"""A CDCL SAT solver over CNF clauses plus native XOR constraints.

The design follows MiniSat's architecture, trimmed to what the counting
algorithms need and extended with a parity engine:

* two-watched-literal clause propagation;
* first-UIP conflict analysis with clause learning;
* VSIDS-style variable activities (linear scan -- instance sizes in this
  repository are tens of variables, where a heap costs more than it saves);
* Luby-sequence restarts and phase saving;
* incremental solving under assumptions (used by FindMin's prefix search);
* XOR constraints propagated natively by parity bookkeeping with lazily
  materialised reason clauses, so hash constraints never get expanded to
  CNF (the "native XOR support" the paper highlights as essential to
  practical ApproxMC).

Literals cross the public API in DIMACS convention (positive/negative
integers); internally literal ``2*(v-1)`` is "variable v true" and
``2*(v-1)+1`` is "variable v false".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import InvalidParameterError
from repro.formulas.cnf import CnfFormula
from repro.formulas.xor_constraint import XorConstraint

_UNASSIGNED = -1


def _lit_internal(dimacs_lit: int) -> int:
    if dimacs_lit == 0:
        raise InvalidParameterError("literal 0 is not allowed")
    v = abs(dimacs_lit) - 1
    return 2 * v + (0 if dimacs_lit > 0 else 1)


def _lit_dimacs(internal_lit: int) -> int:
    v = (internal_lit >> 1) + 1
    return v if (internal_lit & 1) == 0 else -v


@dataclass
class SolverStats:
    """Counters exposed for the benchmark harness."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    solve_calls: int = 0


def _luby(i: int) -> int:
    """The i-th element (1-indexed) of the Luby restart sequence
    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ..."""
    while True:
        k = 1
        while (1 << k) - 1 < i:  # Smallest k with 2^k - 1 >= i.
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1  # Recurse into the repeated prefix.


class CdclSolver:
    """Incremental CDCL solver; see module docstring for feature set."""

    RESTART_BASE = 100
    ACTIVITY_DECAY = 0.95
    ACTIVITY_RESCALE = 1e100

    def __init__(self, num_vars: int = 0) -> None:
        self.num_vars = 0
        self.ok = True
        # Per-variable state (index 0 .. num_vars-1).
        self._assigns: List[int] = []
        self._level: List[int] = []
        self._reason: List[Optional[List[int]]] = []
        self._activity: List[float] = []
        self._saved_phase: List[int] = []
        # Per-literal state (index 0 .. 2*num_vars-1).
        self._watches: List[List[List[int]]] = []
        # Clause database: lists of internal literals.
        self._clauses: List[List[int]] = []
        # XOR rows: (mask over 0-indexed vars, rhs bit).
        self._xors: List[Tuple[int, int]] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self.stats = SolverStats()
        for _ in range(num_vars):
            self.new_var()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_cnf(cls, cnf: CnfFormula,
                 xors: Iterable[XorConstraint] = ()) -> "CdclSolver":
        """Build a solver loaded with a CNF formula and XOR constraints."""
        solver = cls(cnf.num_vars)
        for clause in cnf.clauses:
            solver.add_clause(clause)
        for xc in xors:
            solver.add_xor_constraint(xc)
        return solver

    def new_var(self) -> int:
        """Add a fresh variable; returns its 1-indexed number."""
        self.num_vars += 1
        self._assigns.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._saved_phase.append(0)
        self._watches.append([])
        self._watches.append([])
        return self.num_vars

    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable table to at least ``num_vars``."""
        while self.num_vars < num_vars:
            self.new_var()

    def add_clause(self, dimacs_lits: Sequence[int]) -> bool:
        """Add a clause; returns False if the solver became trivially UNSAT.

        May be called between :meth:`solve` invocations (blocking clauses);
        the next solve restarts propagation from the root level.
        """
        if not self.ok:
            return False
        self._backtrack_to(0)
        lits: List[int] = []
        seen: Dict[int, int] = {}
        for d in dimacs_lits:
            self.ensure_vars(abs(d))
            lit = _lit_internal(d)
            v = lit >> 1
            if v in seen:
                if seen[v] != lit:
                    return True  # Tautology: v or not-v.
                continue
            seen[v] = lit
            lits.append(lit)
        # Drop root-level-false literals; detect already-satisfied clauses.
        filtered = []
        for lit in lits:
            value = self._lit_value(lit)
            if value == 1:
                return True
            if value == 0:
                continue  # False at root level: cannot help.
            filtered.append(lit)
        if not filtered:
            self.ok = False
            return False
        if len(filtered) == 1:
            self._enqueue(filtered[0], None)
            if self._propagate() is not None:
                self.ok = False
                return False
            return True
        clause = filtered
        self._clauses.append(clause)
        self._watches[clause[0]].append(clause)
        self._watches[clause[1]].append(clause)
        return True

    def add_xor(self, mask: int, rhs: int) -> bool:
        """Add the parity constraint ``XOR of vars in mask == rhs``."""
        if not self.ok:
            return False
        self._backtrack_to(0)
        rhs &= 1
        if mask == 0:
            if rhs == 1:
                self.ok = False
                return False
            return True
        self.ensure_vars(mask.bit_length())
        self._xors.append((mask, rhs))
        # Root-level propagation opportunity.
        if self._propagate() is not None:
            self.ok = False
            return False
        return True

    def add_xor_constraint(self, xc: XorConstraint) -> bool:
        """Add an :class:`XorConstraint` (variable-mask convention)."""
        return self.add_xor(xc.mask, xc.rhs)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability under the given DIMACS assumptions."""
        self.stats.solve_calls += 1
        if not self.ok:
            return False
        self._backtrack_to(0)
        self._qhead = 0
        if self._propagate() is not None:
            self.ok = False
            return False
        assumed = [_lit_internal(d) for d in assumptions]
        for lit in assumed:
            if (lit >> 1) >= self.num_vars:
                raise InvalidParameterError("assumption on unknown variable")

        conflicts_this_restart = 0
        restart_number = 1
        limit = self.RESTART_BASE * _luby(restart_number)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_this_restart += 1
                if self._decision_level() == 0:
                    self.ok = False
                    return False
                learnt, backtrack_level = self._analyze(conflict)
                self._backtrack_to(backtrack_level)
                self._attach_learnt(learnt)
                self._decay_activity()
                continue

            if conflicts_this_restart >= limit:
                self.stats.restarts += 1
                conflicts_this_restart = 0
                restart_number += 1
                limit = self.RESTART_BASE * _luby(restart_number)
                self._backtrack_to(0)
                continue

            next_lit = None
            while self._decision_level() < len(assumed):
                p = assumed[self._decision_level()]
                value = self._lit_value(p)
                if value == 1:
                    self._trail_lim.append(len(self._trail))  # Dummy level.
                elif value == 0:
                    return False  # Conflicting assumption.
                else:
                    next_lit = p
                    break
            if next_lit is None:
                next_lit = self._pick_branch_literal()
                if next_lit is None:
                    return True  # All variables assigned: model found.
                self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(next_lit, None)

    def model_int(self) -> int:
        """The satisfying assignment as an integer (bit ``v-1`` = var ``v``).

        Only meaningful directly after :meth:`solve` returned True.
        """
        out = 0
        for v in range(self.num_vars):
            if self._assigns[v] == 1:
                out |= 1 << v
        return out

    def value_of(self, var: int) -> Optional[bool]:
        """Current value of a variable (None if unassigned)."""
        a = self._assigns[var - 1]
        return None if a == _UNASSIGNED else bool(a)

    # ------------------------------------------------------------------
    # Internals: assignment & propagation
    # ------------------------------------------------------------------

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _lit_value(self, lit: int) -> int:
        """1 true, 0 false, -1 unassigned."""
        a = self._assigns[lit >> 1]
        if a == _UNASSIGNED:
            return _UNASSIGNED
        return a ^ (lit & 1)

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> None:
        v = lit >> 1
        self._assigns[v] = 1 ^ (lit & 1)
        self._level[v] = self._decision_level()
        self._reason[v] = reason
        self._trail.append(lit)

    def _propagate(self) -> Optional[List[int]]:
        """Run clause and XOR propagation to fixpoint.

        Returns a conflict clause (all literals false) or None.
        """
        while True:
            conflict = self._propagate_clauses()
            if conflict is not None:
                return conflict
            implied = self._propagate_xors()
            if implied is None:
                return None  # Fixpoint, no conflict.
            if isinstance(implied, list):
                return implied  # XOR conflict clause.
            # implied is True: an XOR enqueued something; loop again.

    def _propagate_clauses(self) -> Optional[List[int]]:
        while self._qhead < len(self._trail):
            p = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = p ^ 1
            watch_list = self._watches[false_lit]
            i = 0
            while i < len(watch_list):
                clause = watch_list[i]
                # Normalise: watched false literal at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == 1:
                    i += 1
                    continue
                # Search for a replacement watch.
                replaced = False
                for j in range(2, len(clause)):
                    if self._lit_value(clause[j]) != 0:
                        clause[1], clause[j] = clause[j], clause[1]
                        self._watches[clause[1]].append(clause)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        replaced = True
                        break
                if replaced:
                    continue
                if self._lit_value(first) == 0:
                    return clause  # Conflict.
                self._enqueue(first, clause)
                i += 1
        return None

    def _propagate_xors(self):
        """Scan XOR rows for units/conflicts.

        Returns None (nothing to do), True (enqueued an implication) or a
        conflict clause.  Lazily materialises reason clauses from parity
        rows -- the native-XOR trick that avoids CNF expansion.
        """
        for mask, rhs in self._xors:
            parity = 0
            unassigned_var = -1
            unassigned_count = 0
            m = mask
            while m:
                v = (m & -m).bit_length() - 1
                m &= m - 1
                a = self._assigns[v]
                if a == _UNASSIGNED:
                    unassigned_count += 1
                    if unassigned_count > 1:
                        break
                    unassigned_var = v
                else:
                    parity ^= a
            if unassigned_count > 1:
                continue
            if unassigned_count == 0:
                if parity != rhs:
                    return self._xor_clause(mask, exclude=-1)
                continue
            implied_value = parity ^ rhs
            lit = 2 * unassigned_var + (0 if implied_value else 1)
            reason = self._xor_clause(mask, exclude=unassigned_var)
            reason.insert(0, lit)
            self._enqueue(lit, reason)
            return True
        return None

    def _xor_clause(self, mask: int, exclude: int) -> List[int]:
        """Clause of currently-false literals over the row's assigned vars."""
        out = []
        m = mask
        while m:
            v = (m & -m).bit_length() - 1
            m &= m - 1
            if v == exclude:
                continue
            # Variable v is assigned; the literal matching *the opposite* of
            # its value is false right now.
            out.append(2 * v + (1 if self._assigns[v] == 1 else 0))
        return out

    # ------------------------------------------------------------------
    # Internals: conflict analysis & learning
    # ------------------------------------------------------------------

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        """First-UIP analysis; returns (learnt clause, backtrack level)."""
        current_level = self._decision_level()
        learnt: List[int] = [0]  # Slot 0 for the asserting literal.
        seen = set()
        counter = 0
        p = None
        reason_lits = conflict
        trail_idx = len(self._trail) - 1

        while True:
            start = 0 if p is None else 1
            for q in reason_lits[start:]:
                v = q >> 1
                if v in seen or self._level[v] == 0:
                    continue
                seen.add(v)
                self._bump_activity(v)
                if self._level[v] == current_level:
                    counter += 1
                else:
                    learnt.append(q)
            while (self._trail[trail_idx] >> 1) not in seen:
                trail_idx -= 1
            p = self._trail[trail_idx]
            trail_idx -= 1
            v = p >> 1
            seen.discard(v)
            counter -= 1
            if counter == 0:
                break
            reason_lits = self._reason[v]
            assert reason_lits is not None, "UIP literal must be implied"

        learnt[0] = p ^ 1
        if len(learnt) == 1:
            return learnt, 0
        # Backtrack to the second-highest decision level in the clause and
        # place that literal in the second watch position.
        max_idx = 1
        for i in range(2, len(learnt)):
            if self._level[learnt[i] >> 1] > self._level[learnt[max_idx] >> 1]:
                max_idx = i
        learnt[1], learnt[max_idx] = learnt[max_idx], learnt[1]
        return learnt, self._level[learnt[1] >> 1]

    def _attach_learnt(self, learnt: List[int]) -> None:
        self.stats.learned_clauses += 1
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        self._clauses.append(learnt)
        self._watches[learnt[0]].append(learnt)
        self._watches[learnt[1]].append(learnt)
        self._enqueue(learnt[0], learnt)

    def _backtrack_to(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for lit in reversed(self._trail[boundary:]):
            v = lit >> 1
            self._saved_phase[v] = self._assigns[v]
            self._assigns[v] = _UNASSIGNED
            self._reason[v] = None
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    # ------------------------------------------------------------------
    # Internals: heuristics
    # ------------------------------------------------------------------

    def _pick_branch_literal(self) -> Optional[int]:
        best_var = -1
        best_activity = -1.0
        for v in range(self.num_vars):
            if self._assigns[v] == _UNASSIGNED \
                    and self._activity[v] > best_activity:
                best_var = v
                best_activity = self._activity[v]
        if best_var < 0:
            return None
        phase = self._saved_phase[best_var]
        return 2 * best_var + (0 if phase == 1 else 1)

    def _bump_activity(self, v: int) -> None:
        self._activity[v] += self._var_inc
        if self._activity[v] > self.ACTIVITY_RESCALE:
            scale = 1.0 / self.ACTIVITY_RESCALE
            for u in range(self.num_vars):
                self._activity[u] *= scale
            self._var_inc *= scale

    def _decay_activity(self) -> None:
        self._var_inc /= self.ACTIVITY_DECAY
