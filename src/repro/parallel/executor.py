"""The parallel execution layer.

Both halves of the paper's transfer are embarrassingly parallel: the
streaming side across shard replicas of a mergeable sketch, the counting
side across independent repetitions (each with its own hash function and
cell-search engine).  This module provides the one abstraction they
share -- an :class:`Executor` that maps a task function over a list of
task payloads -- with three backends:

* :class:`SerialExecutor` runs tasks inline in the calling process.  It
  is the ``workers=1`` path and costs nothing beyond the loop itself: no
  pool spawn, no pickling, no import-time ``multiprocessing`` machinery.
* :class:`ThreadExecutor` fans tasks out over a persistent thread pool.
  Nothing is pickled -- tasks, results and the ``shared`` payload cross
  by reference -- so its per-task overhead is near zero; real scaling
  additionally needs the hot loops to release the GIL (the ``numba``
  kernel's ``nogil`` loops do; see the ``releases_gil`` capability flag
  in :mod:`repro.kernels`).
* :class:`ProcessExecutor` fans tasks out over a ``multiprocessing``
  pool.  Task functions must be module-level (picklable by reference)
  and payloads picklable by value.

Which backend a bare ``workers=k`` knob resolves to is a registry
decision (:mod:`repro.parallel.registry`: explicit name ->
``set_default_executor`` override -> ``REPRO_EXECUTOR`` -> ``auto``),
mirroring the compute-kernel registry's ``REPRO_KERNEL`` chain.

Determinism discipline
----------------------

Parallel runs must be **bit-identical** to serial runs for a fixed seed.
The rules that guarantee it:

* All randomness is drawn in the *parent*, before scatter, in the same
  order the serial loop would draw it (e.g. counters pre-sample every
  repetition's hash functions).  Workers never touch a shared RNG.
* When a task genuinely needs its own generator, derive child seeds in
  the parent with :func:`split_seeds` -- the draws happen before
  scatter, so the seeds do not depend on worker count or scheduling.
* Results are gathered **in task order** (``Executor.map`` preserves
  order), so order-sensitive reductions (medians over repetitions,
  shard-wise merges) see the same sequence as the serial loop.

``shared`` payloads
-------------------

``map(fn, tasks, shared=obj)`` ships ``obj`` once per worker chunk
rather than once per task -- the right place for a formula, an
enumerated solution set, or anything else every task reads but none
mutates.  Workers receive it as ``fn(task, shared)``; under a process
pool mutations made in a worker are invisible to the parent (each
process has its own copy), while in-process executors (serial, thread)
hand the *same* object to every task -- task functions must treat
``shared`` as read-only, and any lazily built scratch state it holds
must be safe to build concurrently (see the ``LinearHash`` packed-layout
cache for the pattern).
"""

from __future__ import annotations

import math
import os
from functools import partial
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.common.errors import InvalidParameterError
from repro.common.rng import RandomSource

T = TypeVar("T")
R = TypeVar("R")

try:
    import multiprocessing as _mp
except ImportError:  # pragma: no cover - stdlib, but the contract allows it
    _mp = None


def available_workers() -> int:
    """Usable CPU count (affinity-aware where the platform exposes it)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def split_seeds(rng: RandomSource, count: int) -> List[int]:
    """Derive ``count`` independent 128-bit child seeds from ``rng``.

    The draws happen in the caller (parent) in index order, so the seed
    assigned to task ``i`` is a function of the master seed only -- never
    of worker count, scheduling, or completion order.  Same discipline as
    :func:`repro.common.rng.spawn_rngs`, but yielding transportable ints
    instead of generator objects.
    """
    if count < 0:
        raise InvalidParameterError("count must be non-negative")
    return [rng.getrandbits(128) for _ in range(count)]


class Executor:
    """Order-preserving ``map`` over picklable tasks; see module docstring."""

    #: Number of workers results are computed on (1 for serial).
    workers: int = 1

    #: Whether tasks run in the calling process (serial, thread): payloads
    #: cross by reference, nothing is pickled, and in-place mutations are
    #: visible to the caller.  Scatter plumbing uses this to skip
    #: wire-encoding work that only pays off across a process boundary.
    in_process: bool = False

    @property
    def is_serial(self) -> bool:
        return self.workers <= 1

    def map(self, fn: Callable[[T, object], R], tasks: Sequence[T],
            shared: object = None) -> List[R]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (no-op for the serial backend)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every task inline: the zero-overhead ``workers=1`` backend."""

    workers = 1
    in_process = True

    def map(self, fn: Callable[[T, object], R], tasks: Sequence[T],
            shared: object = None) -> List[R]:
        return [fn(task, shared) for task in tasks]


class ThreadExecutor(Executor):
    """Fan tasks out over a persistent thread pool (zero pickling).

    The complement of :class:`ProcessExecutor` for the regime where its
    fork+pickle overhead swamps the work: tasks, results and ``shared``
    cross by reference, so a map of tiny repetitions costs little more
    than the serial loop.  True parallel *speed-up* additionally needs
    the per-task hot loops to drop the GIL -- the ``numba`` kernel's
    ``nogil``-compiled loops do, the pure-python paths do not (they
    still run correctly, just interleaved).  ``fn`` and ``shared`` are
    entered concurrently from ``workers`` threads: ``shared`` must be
    treated as read-only and any lazy caches it builds must be
    thread-safe.

    Results are gathered in task order (``ThreadPoolExecutor.map``
    preserves it), so the determinism contract is identical to the other
    backends: bit-identical estimates at any worker count.
    """

    in_process = True

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise InvalidParameterError(
                "ThreadExecutor needs >= 2 workers; use SerialExecutor")
        from concurrent.futures import ThreadPoolExecutor
        self.workers = workers
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="repro-exec")

    def map(self, fn: Callable[[T, object], R], tasks: Sequence[T],
            shared: object = None) -> List[R]:
        tasks = list(tasks)
        if not tasks:
            return []
        if len(tasks) == 1 or self._pool is None:
            # One task cannot overlap with anything; skip the pool hop.
            return [fn(task, shared) for task in tasks]
        return list(self._pool.map(lambda task: fn(task, shared), tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _call_task(fn: Callable, shared: object, task: object) -> object:
    """Module-level trampoline so pool workers can unpickle the call."""
    return fn(task, shared)


class ProcessExecutor(Executor):
    """Fan tasks out over a persistent ``multiprocessing`` pool.

    The pool is created once, up front, and reused across calls, so
    repeated scatters -- chunk waves of a long stream, successive
    counters in a benchmark sweep -- pay the spawn cost once (and
    :func:`get_executor` can catch a failed spawn and degrade to
    serial).  ``fn`` and ``shared`` travel with each worker chunk
    (``workers`` pickles per map, not ``len(tasks)``).
    """

    def __init__(self, workers: int) -> None:
        if _mp is None:
            raise InvalidParameterError(
                "multiprocessing is unavailable; use SerialExecutor")
        if workers < 2:
            raise InvalidParameterError(
                "ProcessExecutor needs >= 2 workers; use SerialExecutor")
        self.workers = workers
        self._pool = _mp.Pool(workers)

    def map(self, fn: Callable[[T, object], R], tasks: Sequence[T],
            shared: object = None) -> List[R]:
        tasks = list(tasks)
        if not tasks:
            return []
        if len(tasks) == 1 or self._pool is None:
            # One task cannot use the pool; skip the pickle round-trip.
            return [fn(task, shared) for task in tasks]
        chunksize = max(1, math.ceil(len(tasks) / self.workers))
        return self._pool.map(partial(_call_task, fn, shared), tasks,
                              chunksize)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` knob: ``None``/1 -> serial, 0 -> all cores."""
    if workers is None:
        return 1
    if workers == 0:
        return available_workers()
    if workers < 0:
        raise InvalidParameterError("workers must be >= 0")
    return workers


def get_executor(workers: Optional[int] = 1,
                 name: Optional[str] = None) -> Executor:
    """The executor for a ``(workers, name)`` pair.

    ``workers=1`` (or ``None``) returns the serial backend -- zero
    behavioural change and no pool spawn.  ``workers=0`` means "all
    cores".  ``name`` picks a registered backend explicitly; ``None``
    follows the registry resolution chain (:func:`set_default_executor`
    override -> ``REPRO_EXECUTOR`` -> ``auto``).  When pool creation is
    impossible, any request degrades gracefully to serial execution.
    """
    # Lazy import: the registry imports this module's classes.
    from repro.parallel.registry import make_executor
    return make_executor(workers, name)


class _OwnedExecutor:
    """Context manager handing out a caller-supplied executor un-closed,
    or a freshly resolved one that is closed on exit.

    The counters and the streaming drivers all accept ``(workers,
    executor)`` pairs; this helper keeps their ownership rule in one
    place: an executor the caller passed in is the caller's to close, an
    executor resolved from ``workers`` lives for one call.
    """

    def __init__(self, workers: Optional[int],
                 executor: Optional[Executor]) -> None:
        self._external = executor
        self._workers = workers
        self._owned: Optional[Executor] = None

    def __enter__(self) -> Executor:
        if self._external is not None:
            return self._external
        self._owned = get_executor(self._workers)
        return self._owned

    def __exit__(self, *exc) -> None:
        if self._owned is not None:
            self._owned.close()
            self._owned = None


def executor_for(workers: Optional[int],
                 executor: Optional[Executor]) -> _OwnedExecutor:
    """``with executor_for(workers, executor) as ex: ...`` -- see
    :class:`_OwnedExecutor`."""
    return _OwnedExecutor(workers, executor)
