"""The executor registry: named parallel backends behind one knob.

Mirrors the compute-kernel registry (:mod:`repro.kernels.registry`):
*which backend* a bare ``workers=k`` fans out on becomes a configuration
flag instead of a hardcoded ``multiprocessing`` pool.

* ``auto`` (default) -- pick per workload: serial for ``workers<=1``,
  otherwise a calibrated decision when :mod:`repro.kernels.autopick` has
  measured this process's workload shape, otherwise a capability
  heuristic (threads when the resolved compute kernel releases the GIL,
  processes when it does not).
* ``serial`` -- run everything inline, whatever ``workers`` says.
* ``thread`` -- :class:`~repro.parallel.executor.ThreadExecutor`
  (zero pickling; real scaling needs a ``releases_gil`` kernel).
* ``process`` -- :class:`~repro.parallel.executor.ProcessExecutor`
  (pays fork+pickle, immune to the GIL).

Selection resolves in order: an explicit name passed by the caller, the
process-wide override set by :func:`set_default_executor` (the CLI's
``--executor`` flag lands here), the ``REPRO_EXECUTOR`` environment
variable, then :data:`DEFAULT_EXECUTOR`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import InvalidParameterError
from repro.parallel.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_workers,
)

try:
    import multiprocessing as _mp
except ImportError:  # pragma: no cover - stdlib, but the contract allows it
    _mp = None

#: The backend used when no explicit name, override, or env var applies.
DEFAULT_EXECUTOR = "auto"

#: Environment variable consulted when no explicit executor is requested.
ENV_VAR = "REPRO_EXECUTOR"


@dataclass(frozen=True)
class ExecutorInfo:
    """One registry entry.

    ``factory`` receives the resolved worker count (already >= 2 for the
    pooled backends; :func:`make_executor` short-circuits ``<= 1`` to
    serial first).  ``available`` is False when the backend cannot run on
    this host (``process`` without ``multiprocessing``); the entry stays
    listed so ``repro kernels`` can say why.
    """

    name: str
    factory: Callable[[int], Executor]
    description: str
    available: bool = True
    unavailable_reason: str = ""


_REGISTRY: Dict[str, ExecutorInfo] = {}
_default_override: Optional[str] = None


def register_executor(name: str, factory: Callable[[int], Executor],
                      description: str = "", available: bool = True,
                      unavailable_reason: str = "",
                      replace: bool = False) -> None:
    """Register a named executor backend (``replace=False`` refuses to
    shadow an existing name)."""
    if not replace and name in _REGISTRY:
        raise InvalidParameterError(f"executor {name!r} already registered")
    _REGISTRY[name] = ExecutorInfo(name, factory, description,
                                   available, unavailable_reason)


def executor_names() -> List[str]:
    """Registered executor names, default first, rest alphabetical."""
    names = sorted(_REGISTRY)
    if DEFAULT_EXECUTOR in names:
        names.remove(DEFAULT_EXECUTOR)
        names.insert(0, DEFAULT_EXECUTOR)
    return names


def executor_info(name: str) -> ExecutorInfo:
    """Look an executor up by name (friendly error listing known names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(executor_names())
        raise InvalidParameterError(
            f"unknown executor {name!r}; registered: {known} "
            f"(also settable via {ENV_VAR})") from None


def has_executor(name: str) -> bool:
    """Whether ``name`` is registered (available or not)."""
    return name in _REGISTRY


def set_default_executor(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide executor override.

    Takes precedence over ``REPRO_EXECUTOR``; the CLI's ``--executor``
    flag routes here so every ``workers=`` knob in the call -- counters,
    sharded ingestion, streaming scatter -- follows the same selection.
    """
    if name is not None:
        executor_info(name)  # Validate eagerly: fail at the flag, not later.
    global _default_override
    _default_override = name


def resolve_executor_name(name: Optional[str] = None) -> str:
    """The executor name an optional explicit ``name`` resolves to.

    An unknown value in ``REPRO_EXECUTOR`` raises here with an error
    naming the variable, so a typo'd environment fails at first use
    instead of silently running serial.
    """
    if name:
        return name
    if _default_override:
        return _default_override
    env = os.environ.get(ENV_VAR)
    if env:
        if not has_executor(env):
            known = ", ".join(executor_names())
            raise InvalidParameterError(
                f"{ENV_VAR}={env!r} names an unknown executor; "
                f"registered: {known}")
        return env
    return DEFAULT_EXECUTOR


def make_executor(workers: Optional[int] = 1,
                  name: Optional[str] = None) -> Executor:
    """Resolve a ``(workers, name)`` pair to a live executor.

    ``workers`` follows :func:`~repro.parallel.executor.resolve_workers`
    (``None``/1 -> serial, 0 -> all cores).  A resolved count of 1
    short-circuits to :class:`SerialExecutor` whatever the name says --
    a pool of one only adds overhead.  Unavailable backends raise with
    the recorded reason; a pool-spawn failure (``OSError``) degrades
    gracefully to serial, preserving the historical ``get_executor``
    contract.
    """
    count = resolve_workers(workers)
    resolved = resolve_executor_name(name)
    info = executor_info(resolved)
    if not info.available:
        raise InvalidParameterError(
            f"executor {resolved!r} is registered but unavailable: "
            f"{info.unavailable_reason}")
    if count <= 1:
        return SerialExecutor()
    try:
        return info.factory(count)
    except (InvalidParameterError, OSError):  # pragma: no cover - env-specific
        return SerialExecutor()


# --------------------------------------------------------------------------
# Built-in entries


def _make_serial(count: int) -> Executor:
    return SerialExecutor()


def _make_thread(count: int) -> Executor:
    return ThreadExecutor(count)


def _make_process(count: int) -> Executor:
    return ProcessExecutor(count)


def _make_auto(count: int) -> Executor:
    # Lazy import: autopick reaches into the kernel registry (and, when
    # calibrating, the solver), none of which this module should drag in
    # at import time.
    from repro.kernels.autopick import auto_executor
    return auto_executor(count)


register_executor(
    "auto", _make_auto,
    description=("per-workload pick: calibrated when measured, else "
                 "thread for GIL-releasing kernels, else process"))
register_executor(
    "serial", _make_serial,
    description="run every task inline (ignores workers)")
register_executor(
    "thread", _make_thread,
    description=("persistent thread pool, zero pickling; scales only "
                 "with a releases_gil kernel"))

_mp_present = _mp is not None
register_executor(
    "process", _make_process,
    description="persistent multiprocessing pool (fork+pickle per map)",
    available=_mp_present,
    unavailable_reason=("" if _mp_present
                        else "multiprocessing is unavailable on this host"))
