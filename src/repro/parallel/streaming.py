"""Chunk scatter / sketch gather plumbing for parallel stream ingestion.

A mergeable F0 sketch turns stream parallelism into pure data
parallelism: ship an empty replica (same hash seeds) to each worker,
scatter whole chunks round-robin, ingest through the existing
``process_batch`` paths, and ``merge`` the pickled replicas back.  Set
semantics (every sketch is a function of the distinct-element set only)
make the partition invisible: the merged estimate is bit-identical to a
single-sketch run no matter how chunks land on workers.

Chunks are dispatched in **waves** (``wave`` chunks per sketch per
dispatch) so a generator-backed stream is never fully materialised in
the parent: each wave buffers at most ``wave * len(sketches)`` chunks,
ships them, and replaces the local sketches with the ingested replicas
the workers return.  In-process executors (serial, thread) run the same
code path without any pickling: the sketches are mutated in place, and
thread tasks never share a sketch (chunk ``j`` goes wholly to sketch
``j mod k``), so no locking is needed.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.parallel.executor import Executor

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: Chunks buffered per sketch per dispatch wave.  At the default chunk
#: size (4096 items) a 4-way scatter buffers ~8 MB of uint64 per wave --
#: large enough to amortise the per-wave pickle of the sketches, small
#: enough that the parent never holds a meaningful fraction of a long
#: stream.
DEFAULT_WAVE = 64


def _compact(chunk: Sequence[int]) -> Sequence[int]:
    """Convert a chunk to a fixed-width numpy array when its values fit:
    pickling a 4096-item buffer is ~an order of magnitude cheaper than a
    4096-element int list, and the batch paths accept either.  Chunks
    holding ints beyond int64 (wide universes) pass through unchanged."""
    if _np is None or isinstance(chunk, _np.ndarray):
        return chunk
    try:
        arr = _np.asarray(chunk)
    except (OverflowError, TypeError, ValueError):
        return chunk
    return arr if arr.dtype.kind in "ui" else chunk


class _StoreFrame:
    """A sketch crossing the process boundary as its versioned wire
    frame (:mod:`repro.store.serialize`) instead of a pickle.

    Pickling this wrapper ships only the ``bytes`` blob; the worker
    decodes, ingests, and re-encodes.  The frame format is the same one
    the sketch store persists and the service transports, so a parallel
    ingestion pipeline and a sketch service interoperate byte-for-byte.
    """

    __slots__ = ("blob",)

    def __init__(self, blob: bytes) -> None:
        self.blob = blob


def _ingest_task(task: Tuple[object, List[Sequence[int]]],
                 _shared: object) -> object:
    """Worker body: feed buffered chunks through the sketch's batch path
    and return the (possibly pickled-back) sketch."""
    sketch, chunks = task
    if isinstance(sketch, _StoreFrame):
        from repro.store.serialize import dumps, loads
        decoded = loads(sketch.blob)
        for chunk in chunks:
            decoded.process_batch(chunk)
        return _StoreFrame(dumps(decoded))
    for chunk in chunks:
        sketch.process_batch(chunk)
    return sketch


def ingest_stream_parallel(executor: Executor, sketches: List[object],
                           chunks: Iterable[Sequence[int]],
                           wave: int = DEFAULT_WAVE,
                           wire: str = "pickle") -> List[object]:
    """Scatter ``chunks`` round-robin across ``sketches`` on ``executor``.

    Chunk ``j`` goes wholly to sketch ``j mod k`` -- never re-sliced per
    element, so worker-side ingestion always sees full chunks and the
    vectorised batch paths never degrade to scalar fallback on small
    tails.  Returns the ingested sketches in their original order (new
    objects under a process pool, the same objects mutated in place
    under a serial executor).

    ``wire`` selects how sketches cross the process boundary:
    ``"pickle"`` (default) ships them as pickles; ``"store"`` ships the
    versioned binary frames of :mod:`repro.store.serialize` -- the same
    bytes a sketch service would accept, with bit-identical estimates
    either way (property-tested in ``tests/test_store.py``).  In-process
    executors (serial, thread) ignore the knob: nothing crosses a
    boundary, so wire-encoding would be pure overhead.
    """
    if wire not in ("pickle", "store"):
        raise ValueError(f"unknown wire {wire!r}; use 'pickle' or 'store'")
    k = len(sketches)
    if k == 0:
        return sketches
    if wire == "store" and not executor.in_process:
        from repro.store.serialize import dumps, loads
        sketches = [_StoreFrame(dumps(sk)) for sk in sketches]
        ingested = _scatter(executor, sketches, chunks, wave)
        return [loads(sk.blob) if isinstance(sk, _StoreFrame) else sk
                for sk in ingested]
    return _scatter(executor, sketches, chunks, wave)


def _scatter(executor: Executor, sketches: List[object],
             chunks: Iterable[Sequence[int]],
             wave: int) -> List[object]:
    """The wave loop shared by both wire encodings."""
    k = len(sketches)
    pending: List[List[Sequence[int]]] = [[] for _ in range(k)]
    buffered = 0
    index = 0
    for chunk in chunks:
        if len(chunk) == 0:
            continue
        if not executor.in_process:
            # Fixed-width buffers pickle an order of magnitude cheaper
            # than int lists; in-process nothing is pickled, so skip it.
            chunk = _compact(chunk)
        pending[index % k].append(chunk)
        index += 1
        buffered += 1
        if buffered >= wave * k:
            sketches = executor.map(_ingest_task,
                                    list(zip(sketches, pending)))
            pending = [[] for _ in range(k)]
            buffered = 0
    if buffered:
        sketches = executor.map(_ingest_task, list(zip(sketches, pending)))
    return sketches
