"""Parallel execution layer (executors, registry, seed splitting, scatter).

See :mod:`repro.parallel.executor` for the backend contract and the
determinism discipline, :mod:`repro.parallel.registry` for the named
backend resolution (``serial``/``thread``/``process``/``auto`` via
``--executor`` / ``REPRO_EXECUTOR``), and
:mod:`repro.parallel.streaming` for the chunk scatter / sketch gather
plumbing the streaming side rides.
"""

from repro.parallel.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_workers,
    executor_for,
    get_executor,
    resolve_workers,
    split_seeds,
)
from repro.parallel.registry import (
    DEFAULT_EXECUTOR,
    ENV_VAR,
    ExecutorInfo,
    executor_info,
    executor_names,
    has_executor,
    make_executor,
    register_executor,
    resolve_executor_name,
    set_default_executor,
)
from repro.parallel.streaming import DEFAULT_WAVE, ingest_stream_parallel

__all__ = [
    "DEFAULT_EXECUTOR",
    "DEFAULT_WAVE",
    "ENV_VAR",
    "Executor",
    "ExecutorInfo",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "available_workers",
    "executor_for",
    "executor_info",
    "executor_names",
    "get_executor",
    "has_executor",
    "ingest_stream_parallel",
    "make_executor",
    "register_executor",
    "resolve_executor_name",
    "resolve_workers",
    "set_default_executor",
    "split_seeds",
]
