"""Process-parallel execution layer (executors, seed splitting, scatter).

See :mod:`repro.parallel.executor` for the backend contract and the
determinism discipline, and :mod:`repro.parallel.streaming` for the
chunk scatter / sketch gather plumbing the streaming side rides.
"""

from repro.parallel.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    available_workers,
    executor_for,
    get_executor,
    resolve_workers,
    split_seeds,
)
from repro.parallel.streaming import DEFAULT_WAVE, ingest_stream_parallel

__all__ = [
    "DEFAULT_WAVE",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "available_workers",
    "executor_for",
    "get_executor",
    "ingest_stream_parallel",
    "resolve_workers",
    "split_seeds",
]
