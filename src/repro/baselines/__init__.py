"""Baseline algorithms the paper's methods are compared against.

* :mod:`repro.baselines.karp_luby` -- the classic Monte Carlo FPRAS for
  #DNF (Karp--Luby coverage estimator), with both a fixed-sample-size
  variant and the optimal-stopping variant of Dagum, Karp, Luby and Ross.
  Section 3.5 cites Meel--Shrotri--Vardi's finding that hashing-based DNF
  counters beat Monte Carlo on many instance families; benchmark E18
  reproduces that comparison on this substrate.
"""

from repro.baselines.karp_luby import (
    KarpLubyResult,
    karp_luby_count,
    karp_luby_optimal_stopping,
)

__all__ = [
    "KarpLubyResult",
    "karp_luby_count",
    "karp_luby_optimal_stopping",
]
