"""The Karp--Luby Monte Carlo FPRAS for #DNF.

The *coverage* estimator: let ``U = sum_i |Sol(T_i)|`` (with multiplicity).
Sample a term ``i`` with probability ``|Sol(T_i)| / U``, then a uniform
solution ``x`` of ``T_i``; the indicator ``Y = 1{i == min{j : x |= T_j}}``
has expectation ``|Sol(phi)| / U``, so ``U * mean(Y)`` is unbiased, and
``Y``'s coverage is at least ``1/k``, giving the classic
``O(k/eps^2 * log(1/delta))`` sample bound.

Two drivers:

* :func:`karp_luby_count` -- fixed sample size from the Chernoff bound
  (transparent cost accounting for the E18 comparison);
* :func:`karp_luby_optimal_stopping` -- the Dagum--Karp--Luby--Ross "AA"
  algorithm, which stops as soon as the empirical accuracy suffices and is
  the strong version of the baseline cited by the paper [22].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import InvalidParameterError, UnsatisfiableError
from repro.common.rng import RandomSource
from repro.formulas.dnf import DnfFormula, DnfTerm


@dataclass
class KarpLubyResult:
    """Estimate plus the cost metric (number of sampled (i, x) pairs)."""

    estimate: float
    samples: int


class _TermSampler:
    """Shared machinery: weighted term choice and membership checks."""

    def __init__(self, formula: DnfFormula, rng: RandomSource) -> None:
        self.formula = formula
        self.rng = rng
        self.terms: List[DnfTerm] = [
            t for t in formula.terms if not t.is_contradictory]
        if not self.terms:
            raise UnsatisfiableError("DNF has no satisfiable terms")
        n = formula.num_vars
        self.sizes = [t.solution_count(n) for t in self.terms]
        self.total = sum(self.sizes)
        self.cumulative = []
        acc = 0
        for s in self.sizes:
            acc += s
            self.cumulative.append(acc)

    def draw(self) -> int:
        """One coverage-indicator sample ``Y`` (0 or 1)."""
        u = self.rng.randrange(self.total)
        lo, hi = 0, len(self.cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.cumulative[mid] <= u:
                lo = mid + 1
            else:
                hi = mid
        index = lo
        x = self._uniform_solution(self.terms[index])
        for j, term in enumerate(self.terms):
            if term.evaluate(x):
                return 1 if j == index else 0
        raise AssertionError("sampled point not in its own term")

    def _uniform_solution(self, term: DnfTerm) -> int:
        n = self.formula.num_vars
        x = self.rng.getrandbits(n) if n else 0
        fixed = term.pos_mask | term.neg_mask
        return (x & ~fixed) | term.pos_mask


def karp_luby_count(formula: DnfFormula, eps: float, delta: float,
                    rng: RandomSource,
                    samples: Optional[int] = None) -> KarpLubyResult:
    """Fixed-sample-size Karp--Luby.

    Default sample count ``ceil(3 k ln(2/delta) / eps^2)`` -- the standard
    Chernoff-derived bound with coverage ``>= 1/k``.
    """
    if eps <= 0 or not 0 < delta < 1:
        raise InvalidParameterError("need eps > 0 and delta in (0, 1)")
    try:
        sampler = _TermSampler(formula, rng)
    except UnsatisfiableError:
        return KarpLubyResult(estimate=0.0, samples=0)
    k = len(sampler.terms)
    if samples is None:
        samples = math.ceil(3.0 * k * math.log(2.0 / delta) / (eps ** 2))
    hits = sum(sampler.draw() for _ in range(samples))
    return KarpLubyResult(
        estimate=sampler.total * hits / samples,
        samples=samples,
    )


def karp_luby_optimal_stopping(formula: DnfFormula, eps: float,
                               delta: float,
                               rng: RandomSource) -> KarpLubyResult:
    """Dagum--Karp--Luby--Ross stopping-rule estimator (their Theorem 1).

    Draws until the running sum of indicators reaches
    ``1 + 2(1+eps)(1+ln(3/delta))/eps^2``; the sample count then adapts to
    the unknown mean ``mu = |Sol(phi)|/U`` instead of the worst case
    ``1/k``.
    """
    if eps <= 0 or not 0 < delta < 1:
        raise InvalidParameterError("need eps > 0 and delta in (0, 1)")
    if eps >= 1:
        # The stopping-rule analysis needs eps < 1; clamp conservatively.
        eps = 0.999
    try:
        sampler = _TermSampler(formula, rng)
    except UnsatisfiableError:
        return KarpLubyResult(estimate=0.0, samples=0)
    upsilon = 1.0 + 2.0 * (1.0 + eps) * (1.0 + math.log(3.0 / delta)) \
        / (eps ** 2)
    running = 0.0
    samples = 0
    while running < upsilon:
        running += sampler.draw()
        samples += 1
    return KarpLubyResult(
        estimate=sampler.total * upsilon / samples,
        samples=samples,
    )
