"""Bit-vector helpers on plain Python integers.

Throughout the library an element of ``{0,1}^n`` is represented as a Python
``int`` in ``[0, 2**n)``.  Two *different* bit orders appear in the paper and
both are supported explicitly rather than implicitly:

* **Assignment order** -- variable ``x_i`` (1-indexed, DIMACS style) lives at
  bit position ``i - 1`` (LSB).  Used for formula assignments.
* **Hash-value order** -- the output of an ``m``-row hash function is an int
  whose *most significant* bit is row 0 ("the first bit" in the paper), so
  that numeric comparison of hash values coincides with lexicographic
  comparison of the corresponding bit strings.  See
  :mod:`repro.hashing.base` for the accessors built on these helpers.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def popcount(x: int) -> int:
    """Return the number of set bits of a non-negative integer."""
    return x.bit_count()


def parity(x: int) -> int:
    """Return the XOR of all bits of ``x`` (0 or 1)."""
    return x.bit_count() & 1


def bit(x: int, i: int) -> int:
    """Return bit ``i`` (0-indexed from the LSB) of ``x``."""
    return (x >> i) & 1


def bits_of(x: int, width: int) -> Iterator[int]:
    """Yield the ``width`` bits of ``x`` from LSB (position 0) upward."""
    for i in range(width):
        yield (x >> i) & 1


def from_bits(bits: Iterable[int]) -> int:
    """Inverse of :func:`bits_of`: build an int from LSB-first bits."""
    x = 0
    for i, b in enumerate(bits):
        if b:
            x |= 1 << i
    return x


def trailing_zeros(x: int, width: int) -> int:
    """Return the number of trailing (least-significant) zero bits.

    For ``x == 0`` every one of the ``width`` bits is zero, so ``width`` is
    returned -- this matches the paper's ``TrailZero`` convention where an
    all-zero hash value has the maximal number of trailing zeros.
    """
    if x == 0:
        return width
    return (x & -x).bit_length() - 1


def leading_zeros(x: int, width: int) -> int:
    """Return the number of leading (most-significant) zero bits of ``x``
    when viewed as a ``width``-bit string."""
    if x >> width:
        raise ValueError(f"value {x} does not fit in {width} bits")
    return width - x.bit_length()


def reverse_bits(x: int, width: int) -> int:
    """Return ``x`` with its ``width``-bit representation reversed."""
    out = 0
    for _ in range(width):
        out = (out << 1) | (x & 1)
        x >>= 1
    return out


def trailing_zeros_batch(values, width: int, kernel: str | None = None):
    """Batched :func:`trailing_zeros` over a uint64 numpy array.

    Dispatches to the selected compute kernel (:mod:`repro.kernels`) --
    SWAR bit tricks on the default ``python`` kernel, an njit-compiled
    loop on ``numba``.  Returns an int64 array (``width`` for zeros).
    """
    from repro.kernels import get_kernel
    return get_kernel(kernel).trail_zeros_batch(values, width)


def bit_length_batch(values, kernel: str | None = None):
    """Batched ``int.bit_length`` over a uint64 numpy array (int64 out;
    0 for 0).  ``leading_zeros`` of a ``width``-bit value is ``width``
    minus this, which is how the hash layer computes cell levels."""
    from repro.kernels import get_kernel
    return get_kernel(kernel).bit_length_batch(values)
