"""Shared low-level utilities used across the whole library.

The :mod:`repro.common` package deliberately has no dependencies on any other
``repro`` subpackage so that every substrate (GF(2) algebra, hashing, SAT,
streaming) can build on it without import cycles.
"""

from repro.common.bitvec import (
    bit,
    bits_of,
    from_bits,
    leading_zeros,
    parity,
    popcount,
    reverse_bits,
    trailing_zeros,
)
from repro.common.errors import (
    BudgetExceededError,
    InvalidParameterError,
    ReproError,
    UnsatisfiableError,
)
from repro.common.rng import RandomSource, spawn_rngs
from repro.common.stats import (
    median,
    median_of_estimates,
    relative_error,
    within_factor,
    within_relative_tolerance,
)

__all__ = [
    "BudgetExceededError",
    "InvalidParameterError",
    "RandomSource",
    "ReproError",
    "UnsatisfiableError",
    "bit",
    "bits_of",
    "from_bits",
    "leading_zeros",
    "median",
    "median_of_estimates",
    "parity",
    "popcount",
    "relative_error",
    "reverse_bits",
    "spawn_rngs",
    "trailing_zeros",
    "within_factor",
    "within_relative_tolerance",
]
