"""Deterministic randomness plumbing.

Every randomized component in the library takes a :class:`RandomSource`
(a thin alias of :class:`random.Random`) rather than reaching for the global
``random`` module.  This keeps experiments reproducible: a single seed at the
top of a benchmark fixes the whole run, and independent sub-streams can be
split off with :func:`spawn_rngs` without the correlated-seed pitfalls of
``Random(seed + i)``.
"""

from __future__ import annotations

import random
from typing import List

#: The random generator type accepted throughout the library.
RandomSource = random.Random


def spawn_rngs(rng: RandomSource, count: int) -> List[RandomSource]:
    """Split ``count`` independent generators off ``rng``.

    Each child is seeded with a fresh 128-bit draw from the parent, which is
    statistically indistinguishable from independent seeding for the scale of
    experiments in this repository.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [random.Random(rng.getrandbits(128)) for _ in range(count)]


def random_bits(rng: RandomSource, width: int) -> int:
    """Return a uniform ``width``-bit integer (0 when ``width == 0``)."""
    if width < 0:
        raise ValueError("width must be non-negative")
    if width == 0:
        return 0
    return rng.getrandbits(width)
