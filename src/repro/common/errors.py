"""Exception hierarchy for the ``repro`` library.

All library-specific exceptions derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish the failure modes that matter:

* :class:`InvalidParameterError` -- the caller passed a malformed or
  out-of-range argument (a programming error at the call site).
* :class:`UnsatisfiableError` -- an operation that requires at least one
  solution/element was invoked on an empty solution space.
* :class:`BudgetExceededError` -- an oracle-call or time budget configured by
  the caller was exhausted before the computation finished.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the ``repro`` library."""


class InvalidParameterError(ReproError, ValueError):
    """An argument was malformed or outside its documented domain."""


class UnsatisfiableError(ReproError):
    """An operation requiring a non-empty solution space found none."""


class BudgetExceededError(ReproError):
    """A configured resource budget (oracle calls, items) was exhausted."""

    def __init__(self, message: str, spent: int | None = None) -> None:
        super().__init__(message)
        #: How much of the budget had been spent when the error was raised.
        self.spent = spent
