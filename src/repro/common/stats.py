"""Estimate aggregation and accuracy checking.

The paper's algorithms all finish with "output the median of
``O(log 1/delta)`` independent estimates"; :func:`median_of_estimates` is that
step.  The accuracy predicates implement the two guarantee styles that appear
in the paper:

* :func:`within_relative_tolerance` -- the PAC / ``(eps, delta)`` guarantee
  ``true/(1+eps) <= est <= (1+eps) * true``.
* :func:`within_factor` -- the coarse ``c``-factor guarantee used by the
  FlajoletMartin rough estimator (``true/c <= est <= c * true``).
"""

from __future__ import annotations

from typing import Sequence


def median(values: Sequence[float]) -> float:
    """Return the lower median of a non-empty sequence.

    The *lower* median (element at index ``(len - 1) // 2`` of the sorted
    sequence) is used rather than interpolating, because the estimates the
    paper takes medians over are often exact powers of two and interpolation
    would manufacture values that no single run produced.
    """
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    return ordered[(len(ordered) - 1) // 2]


def median_of_estimates(estimates: Sequence[float]) -> float:
    """Aggregate independent estimates the way the paper's algorithms do."""
    return median(estimates)


def relative_error(estimate: float, truth: float) -> float:
    """Return ``|estimate - truth| / truth`` (``inf`` if truth is zero and
    the estimate is not)."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / truth


def within_relative_tolerance(estimate: float, truth: float, eps: float) -> bool:
    """Check the PAC guarantee ``truth/(1+eps) <= estimate <= (1+eps)*truth``."""
    if eps < 0:
        raise ValueError("eps must be non-negative")
    if truth == 0:
        return estimate == 0
    return truth / (1.0 + eps) <= estimate <= (1.0 + eps) * truth


def within_factor(estimate: float, truth: float, factor: float) -> bool:
    """Check the coarse guarantee ``truth/factor <= estimate <= factor*truth``."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if truth == 0:
        return estimate == 0
    return truth / factor <= estimate <= factor * truth
