"""Toeplitz matrices over GF(2) with O(m + n) seed bits.

A Toeplitz matrix is constant along every diagonal, so an ``m x n`` instance
is determined by ``m + n - 1`` bits.  This is exactly why the paper prefers
``H_Toeplitz`` over ``H_xor`` in the streaming setting: the hash function can
be *stored* in Theta(n) bits instead of Theta(n^2), while remaining 2-wise
independent (Carter--Wegman).
"""

from __future__ import annotations

from typing import List

from repro.common.rng import RandomSource


class ToeplitzMatrix:
    """An ``nrows x ncols`` GF(2) Toeplitz matrix.

    Entry ``A[i][j]`` equals bit ``i - j + (ncols - 1)`` of the diagonal seed
    ``diag`` (so consecutive rows are sliding windows of the seed).  Rows are
    materialised once at construction as integers compatible with
    :func:`repro.gf2.matrix.mat_vec_mul`.
    """

    __slots__ = ("nrows", "ncols", "diag", "rows")

    def __init__(self, nrows: int, ncols: int, diag: int) -> None:
        if nrows < 0 or ncols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        seed_len = max(nrows + ncols - 1, 0)
        if diag >> seed_len:
            raise ValueError("diagonal seed has too many bits")
        self.nrows = nrows
        self.ncols = ncols
        self.diag = diag
        self.rows = self._materialise_rows()

    @classmethod
    def random(cls, rng: RandomSource, nrows: int, ncols: int) -> "ToeplitzMatrix":
        """Sample a uniform Toeplitz matrix."""
        seed_len = max(nrows + ncols - 1, 0)
        diag = rng.getrandbits(seed_len) if seed_len else 0
        return cls(nrows, ncols, diag)

    @property
    def seed_bits(self) -> int:
        """Number of bits needed to transmit this matrix (distributed cost)."""
        return max(self.nrows + self.ncols - 1, 0)

    def _materialise_rows(self) -> List[int]:
        n = self.ncols
        rows = []
        for i in range(self.nrows):
            window = (self.diag >> i) & ((1 << n) - 1) if n else 0
            # window bit t is A[i][n-1-t]; reverse to put column j at bit j.
            row = 0
            for t in range(n):
                if (window >> t) & 1:
                    row |= 1 << (n - 1 - t)
            rows.append(row)
        return rows

    def entry(self, i: int, j: int) -> int:
        """Return ``A[i][j]`` (bounds-checked)."""
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise IndexError("Toeplitz index out of range")
        return (self.rows[i] >> j) & 1

    def __repr__(self) -> str:
        return (f"ToeplitzMatrix(nrows={self.nrows}, ncols={self.ncols}, "
                f"diag={self.diag:#x})")
