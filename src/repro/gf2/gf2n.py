"""The finite field GF(2^n) on plain integers.

Field elements are integers in ``[0, 2**n)`` read as polynomials over GF(2)
(bit ``i`` is the coefficient of ``x**i``), reduced modulo a fixed degree-n
irreducible polynomial.  The s-wise independent hash family of the paper
(Section 2, used by the Estimation algorithm) is a uniformly random degree-
``s-1`` polynomial over this field.

Irreducible moduli are found at runtime with Rabin's irreducibility test,
preferring trinomials then pentanomials so the reduction step stays cheap.
The search is deterministic, so a given ``n`` always yields the same field.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from repro.common.errors import InvalidParameterError
from repro.kernels import get_kernel

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


def poly_degree(f: int) -> int:
    """Degree of a GF(2)[x] polynomial (-1 for the zero polynomial)."""
    return f.bit_length() - 1


def poly_mul(a: int, b: int) -> int:
    """Carry-less (GF(2)[x]) product of two polynomials."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def poly_mod(a: int, f: int) -> int:
    """Remainder of ``a`` modulo ``f`` in GF(2)[x]."""
    if f == 0:
        raise ZeroDivisionError("polynomial modulus is zero")
    df = poly_degree(f)
    da = poly_degree(a)
    while da >= df:
        a ^= f << (da - df)
        da = poly_degree(a)
    return a


def poly_mulmod(a: int, b: int, f: int) -> int:
    """Product of ``a`` and ``b`` reduced modulo ``f``."""
    return poly_mod(poly_mul(a, b), f)


def poly_gcd(a: int, b: int) -> int:
    """Greatest common divisor in GF(2)[x]."""
    while b:
        a, b = b, poly_mod(a, b)
    return a


def _x_pow_pow2_mod(k: int, f: int) -> int:
    """Compute ``x**(2**k) mod f`` by k repeated squarings."""
    t = poly_mod(0b10, f)  # The polynomial x.
    for _ in range(k):
        t = poly_mulmod(t, t, f)
    return t


def _prime_factors(n: int) -> List[int]:
    """Distinct prime factors of ``n`` by trial division (n is small)."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def is_irreducible(f: int) -> bool:
    """Rabin's irreducibility test for a GF(2)[x] polynomial.

    ``f`` of degree ``d`` is irreducible iff ``x**(2**d) == x (mod f)`` and
    for every prime divisor ``q`` of ``d``,
    ``gcd(x**(2**(d/q)) - x, f) == 1``.
    """
    d = poly_degree(f)
    if d <= 0:
        return False
    if d == 1:
        return True
    if not (f & 1):  # Divisible by x.
        return False
    x = 0b10
    if _x_pow_pow2_mod(d, f) != poly_mod(x, f):
        return False
    for q in _prime_factors(d):
        h = _x_pow_pow2_mod(d // q, f) ^ poly_mod(x, f)
        if poly_gcd(f, h) != 1:
            return False
    return True


@lru_cache(maxsize=None)
def find_irreducible(n: int) -> int:
    """Return a deterministic degree-``n`` irreducible polynomial.

    Searches trinomials ``x^n + x^k + 1`` with the smallest ``k`` first, then
    pentanomials; low weight keeps :func:`poly_mod` fast.  Every ``n`` in the
    range this library uses (up to a few hundred) admits such a polynomial.
    """
    if n < 1:
        raise InvalidParameterError("field degree must be >= 1")
    if n == 1:
        return 0b10  # x itself: GF(2)[x]/(x) == GF(2).
    top = 1 << n
    for k in range(1, n):
        f = top | (1 << k) | 1
        if is_irreducible(f):
            return f
    for k3 in range(3, n):
        for k2 in range(2, k3):
            for k1 in range(1, k2):
                f = top | (1 << k3) | (1 << k2) | (1 << k1) | 1
                if is_irreducible(f):
                    return f
    raise InvalidParameterError(
        f"no low-weight irreducible polynomial of degree {n} found")


class GF2n:
    """Arithmetic in GF(2^n) with a fixed (deterministic) modulus."""

    __slots__ = ("n", "modulus", "size", "kernel")

    def __init__(self, n: int, modulus: int | None = None,
                 kernel: str | None = None) -> None:
        if n < 1:
            raise InvalidParameterError("field degree must be >= 1")
        if modulus is None:
            modulus = find_irreducible(n)
        if poly_degree(modulus) != n:
            raise InvalidParameterError("modulus degree does not match n")
        if not is_irreducible(modulus):
            raise InvalidParameterError("modulus is not irreducible")
        self.n = n
        self.modulus = modulus
        self.size = 1 << n
        #: Compute-kernel name for the batched paths (None follows the
        #: registry's override / ``REPRO_KERNEL`` / default resolution).
        self.kernel = kernel

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR)."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        return poly_mulmod(a, b, self.modulus)

    def pow(self, a: int, e: int) -> int:
        """Field exponentiation by square-and-multiply."""
        if e < 0:
            return self.pow(self.inv(a), -e)
        result = 1
        base = poly_mod(a, self.modulus)
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    def inv(self, a: int) -> int:
        """Multiplicative inverse via Fermat (``a**(2^n - 2)``)."""
        a = poly_mod(a, self.modulus)
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^n)")
        return self.pow(a, self.size - 2)

    def eval_poly(self, coeffs: List[int], x: int) -> int:
        """Evaluate ``sum coeffs[i] * x**i`` by Horner's rule.

        ``coeffs[0]`` is the constant term.  This is the hash evaluation of
        the s-wise independent family: ``h(x) = a_0 + a_1 x + ... +
        a_{s-1} x^{s-1}``.
        """
        acc = 0
        for c in reversed(coeffs):
            acc = self.mul(acc, x) ^ c
        return acc

    def _batchable(self) -> bool:
        """Whether the vectorised field path applies.  The shift-and-reduce
        step needs ``a << 1`` to fit in a uint64, hence ``n <= 63``."""
        return _np is not None and self.n <= 63

    def eval_poly_batch(self, coeffs: List[int], xs) -> "object":
        """Vectorised :meth:`eval_poly` over a numpy array of points --
        the batched s-wise hash evaluation, dispatched to the selected
        compute kernel (:mod:`repro.kernels`).  Falls back to the scalar
        Horner loop without numpy or for ``n > 63``."""
        if not self._batchable():
            return [self.eval_poly(coeffs, int(x)) for x in xs]
        xs = _np.asarray(xs, dtype=_np.uint64)
        if not coeffs or xs.size == 0:
            return _np.zeros_like(xs)
        coeff_arr = _np.array(coeffs, dtype=_np.uint64)
        return get_kernel(self.kernel).gf2_eval_poly_batch(
            coeff_arr, xs, self.n, self.modulus)

    def __repr__(self) -> str:
        return f"GF2n(n={self.n}, modulus={self.modulus:#x})"
