"""Affine subspaces of {0,1}^n and their images under affine maps.

An affine subspace is stored as ``origin + span(basis)``.  These objects are
the common currency of every polynomial-time path in the paper:

* the solutions of a DNF term intersected with ``h(x) = 0^m`` (BoundedSAT's
  DNF case, Proposition 1);
* the hashed image ``h(Sol(T))`` of a DNF term, whose ``p`` numerically
  smallest elements FindMin needs (Proposition 2);
* the streamed affine spaces ``{x : Ax = b}`` of Section 5 (Proposition 4).

The key operation is :meth:`AffineSubspace.smallest_elements`, which returns
the ``p`` numerically smallest members *without* enumerating the whole
subspace: after an MSB-first reduction the elements are monotone in the
choice vector, so the smallest ``p`` correspond to choice values
``0 .. p-1``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.gf2.matrix import (
    reduce_modulo_basis,
    rref_msb,
    solve_affine_system,
)


class AffineSubspace:
    """``{origin ^ xor-combinations of basis}`` inside ``{0,1}^width``.

    The basis is kept in MSB-first reduced echelon form (distinct leading
    bits, each pivot bit cleared from every other vector and from the
    origin), which canonicalises the representation: two equal subspaces
    have identical ``origin`` and ``basis``.
    """

    __slots__ = ("width", "origin", "basis")

    def __init__(self, width: int, origin: int, basis: Sequence[int]) -> None:
        if origin >> width:
            raise ValueError("origin does not fit in width bits")
        reduced, _pivots = rref_msb(list(basis))
        self.width = width
        self.basis = reduced
        self.origin = reduce_modulo_basis(origin, reduced)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def solve(cls, rows: Sequence[int], rhs: Sequence[int],
              width: int) -> Optional["AffineSubspace"]:
        """The solution set of ``A x = b``, or ``None`` if inconsistent."""
        solution = solve_affine_system(rows, rhs, width)
        if solution is None:
            return None
        x0, basis = solution
        return cls(width, x0, basis)

    @classmethod
    def full_space(cls, width: int) -> "AffineSubspace":
        """The whole cube {0,1}^width."""
        return cls(width, 0, [1 << i for i in range(width)])

    @classmethod
    def product(cls, spaces: Sequence["AffineSubspace"]) -> "AffineSubspace":
        """The direct product, laid out with ``spaces[0]`` in the lowest
        bits -- how a d-dimensional structured set combines its per-
        dimension pieces into one subspace of ``{0,1}^(sum widths)``."""
        width = 0
        origin = 0
        basis: List[int] = []
        for space in spaces:
            origin |= space.origin << width
            basis.extend(b << width for b in space.basis)
            width += space.width
        return cls(width, origin, basis)

    @classmethod
    def single_point(cls, width: int, point: int) -> "AffineSubspace":
        """The singleton {point}."""
        return cls(width, point, [])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def dimension(self) -> int:
        """Dimension of the subspace (log2 of its size)."""
        return len(self.basis)

    def size(self) -> int:
        """Number of elements, ``2**dimension``."""
        return 1 << len(self.basis)

    def contains(self, x: int) -> bool:
        """Membership test by reducing ``x - origin`` against the basis."""
        return reduce_modulo_basis(x ^ self.origin, self.basis) == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineSubspace):
            return NotImplemented
        return (self.width == other.width and self.origin == other.origin
                and self.basis == other.basis)

    def __hash__(self) -> int:
        return hash((self.width, self.origin, tuple(self.basis)))

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def element(self, choice: int) -> int:
        """The element selected by a ``dimension``-bit choice vector.

        Bit ``dimension - 1 - i`` of ``choice`` toggles ``basis[i]``; because
        the basis is sorted by decreasing pivot, elements are *strictly
        increasing* in ``choice`` (numeric order), which
        :meth:`smallest_elements` exploits.
        """
        if choice >> len(self.basis):
            raise ValueError("choice vector out of range")
        x = self.origin
        d = len(self.basis)
        for i, b in enumerate(self.basis):
            if (choice >> (d - 1 - i)) & 1:
                x ^= b
        return x

    def __iter__(self) -> Iterator[int]:
        """Iterate all elements in increasing numeric order."""
        for choice in range(self.size()):
            yield self.element(choice)

    def iter_limited(self, limit: int) -> Iterator[int]:
        """Iterate at most ``limit`` elements (ascending)."""
        for choice in range(min(limit, self.size())):
            yield self.element(choice)

    def smallest_elements(self, p: int) -> List[int]:
        """Return the ``min(p, size)`` numerically smallest elements, sorted.

        This is the fast-path primitive behind FindMin (Proposition 2) and
        AffineFindMin (Proposition 4): the subspace's elements are monotone
        in the choice vector, so the smallest ``p`` are choices ``0..p-1``.
        """
        if p < 0:
            raise ValueError("p must be non-negative")
        return [self.element(c) for c in range(min(p, self.size()))]

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def intersect(self, rows: Sequence[int],
                  rhs: Sequence[int]) -> Optional["AffineSubspace"]:
        """Intersect with the affine constraints ``rows . v = rhs``.

        Substituting ``v = origin ^ (choice combination)`` turns each
        constraint into a linear equation over the choice space; the result
        is mapped back to element space.  Returns ``None`` when empty.
        """
        d = len(self.basis)
        choice_rows: List[int] = []
        choice_rhs: List[int] = []
        for row, b in zip(rows, rhs):
            crow = 0
            for i, vec in enumerate(self.basis):
                if (row & vec).bit_count() & 1:
                    # basis[i] is toggled by choice bit (d - 1 - i); keep the
                    # same packing convention as :meth:`element`.
                    crow |= 1 << (d - 1 - i)
            target = (b ^ ((row & self.origin).bit_count() & 1)) & 1
            if crow == 0:
                if target:
                    return None
                continue
            choice_rows.append(crow)
            choice_rhs.append(target)
        solved = solve_affine_system(choice_rows, choice_rhs, d)
        if solved is None:
            return None
        c0, cbasis = solved
        new_origin = self.element(c0)
        new_basis = [self.element(c0 ^ cb) ^ new_origin for cb in cbasis]
        return AffineSubspace(self.width, new_origin, new_basis)

    def max_trailing_zeros(self) -> int:
        """The largest ``t`` such that some element has ``t`` trailing zero
        bits -- the FlajoletMartin / FindMaxRange quantity, computed in
        polynomial time by feasibility checks on suffix constraints."""
        lo, hi = 0, self.width
        # Binary search the monotone predicate "some element has >= t
        # trailing zeros".
        while lo < hi:
            mid = (lo + hi + 1) // 2
            rows = [1 << j for j in range(mid)]
            if self.intersect(rows, [0] * mid) is not None:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def image(self, rows: Sequence[int], offset: int,
              out_width: int) -> "AffineSubspace":
        """The image ``{A x + c : x in self}`` under an affine map.

        ``rows`` is the map's matrix (one int per output bit, output bit
        ``r`` at position ``r``), ``offset`` the additive constant ``c``.
        Output bit order is the caller's concern; this method is bit-order
        agnostic.
        """
        from repro.gf2.matrix import mat_vec_mul

        new_origin = mat_vec_mul(rows, self.origin) ^ offset
        new_basis = [mat_vec_mul(rows, b) for b in self.basis]
        return AffineSubspace(out_width, new_origin, new_basis)

    def __repr__(self) -> str:
        return (f"AffineSubspace(width={self.width}, dim={self.dimension}, "
                f"origin={self.origin:#x})")
