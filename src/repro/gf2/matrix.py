"""Dense GF(2) matrices as lists of integer rows.

A matrix with ``ncols`` columns is a ``list[int]`` where row ``r`` is an
integer whose bit ``j`` (LSB-indexed) is the entry in column ``j``.  This
representation makes row operations single XORs and matrix-vector products a
popcount, which is the fastest dense GF(2) kernel available in pure Python.

Two pivoting conventions are provided because the library needs both:

* :func:`solve_affine_system` and :func:`nullspace_basis` pivot on the
  *lowest* set bit -- order is irrelevant for solving.
* :func:`rref_msb` pivots on the *highest* set bit, producing the reduced
  basis used to enumerate the numerically smallest elements of an affine
  subspace (see :class:`repro.gf2.affine.AffineSubspace`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.common.rng import RandomSource


def mat_vec_mul(rows: Sequence[int], x: int) -> int:
    """Multiply a GF(2) matrix by a column vector.

    The result has the bit for row ``r`` at position ``r`` (LSB-indexed);
    callers that need the paper's "row 0 is the first/most significant bit"
    convention repack at the hashing layer.
    """
    out = 0
    for r, row in enumerate(rows):
        out |= ((row & x).bit_count() & 1) << r
    return out


def random_matrix_rows(rng: RandomSource, nrows: int, ncols: int,
                       density: float = 0.5) -> List[int]:
    """Sample a uniform (or sparse Bernoulli) random GF(2) matrix.

    ``density == 0.5`` gives the uniform distribution used by ``H_xor``;
    other densities support the sparse-XOR ablation sketched in the paper's
    future-work section.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must lie in [0, 1]")
    if density == 0.5:
        return [rng.getrandbits(ncols) if ncols else 0 for _ in range(nrows)]
    rows = []
    for _ in range(nrows):
        row = 0
        for j in range(ncols):
            if rng.random() < density:
                row |= 1 << j
        rows.append(row)
    return rows


def rank(rows: Sequence[int]) -> int:
    """Return the GF(2) rank of the matrix."""
    # A standard XOR basis indexed by leading-bit position: insertion reduces
    # the candidate by the unique basis vector sharing its leading bit until
    # it is zero or has a fresh leading bit.
    by_lead: dict[int, int] = {}
    for row in rows:
        while row:
            lead = row.bit_length()
            if lead not in by_lead:
                by_lead[lead] = row
                break
            row ^= by_lead[lead]
    return len(by_lead)


def rref_msb(vectors: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Reduced row echelon form with *most-significant-bit* pivots.

    Returns ``(basis, pivots)`` where ``basis`` is sorted by decreasing pivot
    position, each pivot bit appears in exactly one basis vector, and
    ``pivots[i]`` is the bit position of ``basis[i]``'s leading bit.
    """
    basis: List[int] = []
    for vec in vectors:
        # Forward-reduce by leading bits until independent or zero.
        changed = True
        while vec and changed:
            changed = False
            for b in basis:
                if vec.bit_length() == b.bit_length():
                    vec ^= b
                    changed = True
                    break
        if vec:
            basis.append(vec)
    basis.sort(key=int.bit_length, reverse=True)
    # Back-substitute so each pivot appears only in its own vector.
    for i in range(len(basis)):
        for j in range(i):
            if (basis[j] >> (basis[i].bit_length() - 1)) & 1:
                basis[j] ^= basis[i]
    pivots = [b.bit_length() - 1 for b in basis]
    return basis, pivots


def reduce_modulo_basis(vec: int, basis: Sequence[int]) -> int:
    """Clear every pivot bit of an MSB-first RREF ``basis`` from ``vec``."""
    for b in basis:
        if (vec >> (b.bit_length() - 1)) & 1:
            vec ^= b
    return vec


def solve_affine_system(
    rows: Sequence[int],
    rhs: Sequence[int],
    ncols: int,
) -> Optional[Tuple[int, List[int]]]:
    """Solve ``A x = b`` over GF(2).

    ``rows[r]`` is row ``r`` of ``A`` (column ``j`` at bit ``j``) and
    ``rhs[r]`` its right-hand-side bit.  Returns ``None`` when the system is
    inconsistent, else ``(x0, basis)`` where ``x0`` is one solution and
    ``basis`` spans the nullspace of ``A`` (so the full solution set is
    ``{x0 ^ span(basis)}``, of size ``2**len(basis)``).
    """
    if len(rows) != len(rhs):
        raise ValueError("rows and rhs must have equal length")
    rhs_bit = 1 << ncols  # Augmented column position.
    aug: List[int] = []
    for row, b in zip(rows, rhs):
        if row >> ncols:
            raise ValueError("row has bits beyond ncols")
        aug.append(row | (rhs_bit if b & 1 else 0))

    pivot_of_col: dict[int, int] = {}
    reduced: List[int] = []
    for vec in aug:
        for col, idx in pivot_of_col.items():
            if (vec >> col) & 1:
                vec ^= reduced[idx]
        coeffs = vec & (rhs_bit - 1)
        if coeffs == 0:
            if vec:  # 0 = 1: inconsistent.
                return None
            continue
        col = (coeffs & -coeffs).bit_length() - 1
        # Eliminate the new pivot from previously reduced rows.
        for i, other in enumerate(reduced):
            if (other >> col) & 1:
                reduced[i] = other ^ vec
        pivot_of_col[col] = len(reduced)
        reduced.append(vec)

    # Particular solution: set each pivot column from its row's rhs, free
    # columns to zero.
    x0 = 0
    for col, idx in pivot_of_col.items():
        if (reduced[idx] >> ncols) & 1:
            x0 |= 1 << col
    # Nullspace basis: one vector per free column.
    basis: List[int] = []
    pivot_cols = set(pivot_of_col)
    for col in range(ncols):
        if col in pivot_cols:
            continue
        vec = 1 << col
        for pcol, idx in pivot_of_col.items():
            if (reduced[idx] >> col) & 1:
                vec |= 1 << pcol
        basis.append(vec)
    return x0, basis


def nullspace_basis(rows: Sequence[int], ncols: int) -> List[int]:
    """Return a basis of ``{x : A x = 0}``."""
    solution = solve_affine_system(rows, [0] * len(rows), ncols)
    assert solution is not None  # The homogeneous system is always solvable.
    return solution[1]
