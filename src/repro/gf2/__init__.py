"""Linear algebra over GF(2) and arithmetic in GF(2^n).

This package is the mathematical substrate for everything hashing-related in
the paper:

* :mod:`repro.gf2.matrix` -- dense GF(2) matrices stored as integer rows,
  with Gaussian elimination, affine-system solving, and MSB-first reduced
  echelon forms (the workhorse of the lex-minimum algorithms).
* :mod:`repro.gf2.toeplitz` -- the O(n)-seed Toeplitz matrices behind
  ``H_Toeplitz`` (Carter--Wegman 2-universal hashing).
* :mod:`repro.gf2.gf2n` -- the finite field GF(2^n) (carry-less
  multiplication, Rabin irreducibility testing) behind the s-wise
  independent polynomial hash family.
* :mod:`repro.gf2.affine` -- affine subspaces of {0,1}^n: solving,
  enumeration, images under affine maps, and numerically-smallest-element
  enumeration.
"""

from repro.gf2.affine import AffineSubspace
from repro.gf2.gf2n import GF2n, find_irreducible, is_irreducible
from repro.gf2.matrix import (
    mat_vec_mul,
    nullspace_basis,
    random_matrix_rows,
    rank,
    rref_msb,
    solve_affine_system,
)
from repro.gf2.toeplitz import ToeplitzMatrix

__all__ = [
    "AffineSubspace",
    "GF2n",
    "ToeplitzMatrix",
    "find_irreducible",
    "is_irreducible",
    "mat_vec_mul",
    "nullspace_basis",
    "random_matrix_rows",
    "rank",
    "rref_msb",
    "solve_affine_system",
]
