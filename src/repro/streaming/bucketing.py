"""The Bucketing F0 sketch (Gibbons--Tirthapura level sampling).

Each repetition keeps the distinct stream elements that land in the hash
cell ``h_m(x) = 0^m``; when the bucket reaches ``Thresh`` elements the level
``m`` is raised and the bucket re-filtered.  The estimate is
``|bucket| * 2^m``, median over repetitions.

Note on the overflow rule: the paper's streaming pseudo-code (Algorithm 3)
increments on ``size > Thresh`` while its sketch relation P1 and ApproxMC
(Algorithm 5) require the strict invariant ``size < Thresh``.  We use the P1
rule (raise the level while ``size >= Thresh``) in both the streaming and
counting implementations so that the two sides build *identical* sketches --
the equivalence the paper's Section 1 argues conceptually, and which
benchmark E19 checks bit-for-bit.
"""

from __future__ import annotations

from typing import List, Set

from repro.common.rng import RandomSource
from repro.common.stats import median
from repro.hashing.base import LinearHash
from repro.hashing.toeplitz import ToeplitzHashFamily
from repro.streaming.base import SketchParams


class BucketingRow:
    """One repetition: a hash function, a level, and a bucket of elements.

    The bucket internally remembers each member's cell level (computed
    once, on insertion), so level raises re-filter without re-hashing; the
    batch path computes those levels vectorised for a whole stream chunk.
    """

    __slots__ = ("h", "thresh", "level", "bucket", "_levels")

    def __init__(self, h: LinearHash, thresh: int) -> None:
        self.h = h
        self.thresh = thresh
        self.level = 0
        self.bucket: Set[int] = set()
        self._levels: dict = {}

    def _level_of(self, x: int) -> int:
        lvl = self._levels.get(x)
        if lvl is None:
            lvl = self.h.cell_level(x)
        return lvl

    def process(self, x: int) -> None:
        """Insert ``x`` if it lies in the current cell; raise the level
        while the bucket violates the ``< Thresh`` invariant."""
        lvl = self._level_of(x)
        if lvl < self.level:
            return
        self._levels[x] = lvl  # Only bucket members are cached.
        self.bucket.add(x)
        self._shrink()

    def process_batch(self, xs) -> None:
        """Process a chunk of stream elements with one vectorised hash
        evaluation (numpy bit-packed ``cell_levels_batch``)."""
        levels = self.h.cell_levels_batch(xs)
        bucket = self.bucket
        current = self.level
        for x, lvl in zip(xs, levels):
            lvl = int(lvl)
            if lvl >= current:
                x = int(x)
                self._levels[x] = lvl
                bucket.add(x)
        self._shrink()

    def _shrink(self) -> None:
        shrunk = False
        while len(self.bucket) >= self.thresh \
                and self.level < self.h.out_bits:
            self.level += 1
            shrunk = True
            self.bucket = {y for y in self.bucket
                           if self._level_of(y) >= self.level}
        if shrunk:
            self._levels = {y: lvl for y, lvl in self._levels.items()
                            if y in self.bucket}

    def merge(self, other: "BucketingRow") -> None:
        """Combine with a sketch built from another sub-stream using the
        same hash function (distributed Section 4)."""
        if other.h is not self.h and other.h.rows != self.h.rows:
            raise ValueError("cannot merge rows with different hashes")
        self.level = max(self.level, other.level)
        self._levels.update(other._levels)
        merged = {y for y in self.bucket | other.bucket
                  if self._level_of(y) >= self.level}
        self.bucket = merged
        self._shrink()

    def estimate(self) -> float:
        """``|bucket| * 2^level``."""
        return len(self.bucket) * float(1 << self.level)

    def sketch_state(self):
        """``(sorted bucket, level)`` -- used by the sketch-equivalence
        experiment (E19)."""
        return (tuple(sorted(self.bucket)), self.level)


class BucketingF0:
    """Median over ``t`` independent :class:`BucketingRow` repetitions."""

    def __init__(self, universe_bits: int, params: SketchParams,
                 rng: RandomSource) -> None:
        self.universe_bits = universe_bits
        self.params = params
        family = ToeplitzHashFamily(universe_bits, universe_bits)
        self.rows: List[BucketingRow] = [
            BucketingRow(family.sample(rng), params.thresh)
            for _ in range(params.repetitions)
        ]

    def process(self, x: int) -> None:
        for row in self.rows:
            row.process(x)

    def process_batch(self, xs) -> None:
        """Feed a whole stream chunk; each row evaluates its hash over the
        chunk in one vectorised pass (see ``LinearHash.cell_levels_batch``)."""
        for row in self.rows:
            row.process_batch(xs)

    def estimate(self) -> float:
        return median([row.estimate() for row in self.rows])

    def space_bits(self) -> int:
        """Rough footprint: seed bits plus bucket contents, per row."""
        return sum(row.h.seed_bits + len(row.bucket) * self.universe_bits
                   for row in self.rows)
