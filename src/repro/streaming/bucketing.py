"""The Bucketing F0 sketch (Gibbons--Tirthapura level sampling).

Each repetition keeps the distinct stream elements that land in the hash
cell ``h_m(x) = 0^m``; when the bucket reaches ``Thresh`` elements the level
``m`` is raised and the bucket re-filtered.  The estimate is
``|bucket| * 2^m``, median over repetitions.

Note on the overflow rule: the paper's streaming pseudo-code (Algorithm 3)
increments on ``size > Thresh`` while its sketch relation P1 and ApproxMC
(Algorithm 5) require the strict invariant ``size < Thresh``.  We use the P1
rule (raise the level while ``size >= Thresh``) in both the streaming and
counting implementations so that the two sides build *identical* sketches --
the equivalence the paper's Section 1 argues conceptually, and which
benchmark E19 checks bit-for-bit.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.rng import RandomSource
from repro.common.stats import median
from repro.hashing.base import LinearHash
from repro.hashing.toeplitz import ToeplitzHashFamily
from repro.streaming.base import SketchParams

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


class BucketingRow:
    """One repetition: a hash function, a level, and a bucket of elements.

    The bucket internally remembers each member's cell level (computed
    once, on insertion), so level raises re-filter without re-hashing; the
    batch path computes those levels vectorised for a whole stream chunk.

    A row may also be built *without* a hash function from externally
    levelled elements (:meth:`from_levelled`) -- the distributed
    coordinator's combine operates on fingerprint messages whose cell
    levels were computed site-side, and such rows support ``merge`` and
    ``estimate`` but not ``process``.
    """

    __slots__ = ("h", "out_bits", "thresh", "level", "bucket", "_levels")

    def __init__(self, h: Optional[LinearHash], thresh: int,
                 out_bits: Optional[int] = None) -> None:
        if h is None and out_bits is None:
            raise ValueError("a hashless row needs an explicit out_bits")
        self.h = h
        self.out_bits = h.out_bits if out_bits is None else out_bits
        self.thresh = thresh
        self.level = 0
        self.bucket: Set[int] = set()
        self._levels: dict = {}

    @classmethod
    def from_levelled(cls, pairs: Iterable[Tuple[int, int]], thresh: int,
                      out_bits: int, level: int = 0) -> "BucketingRow":
        """A row over ``(element, cell level)`` pairs computed elsewhere,
        already sampled at ``level`` (the coordinator-side constructor)."""
        row = cls(None, thresh, out_bits=out_bits)
        row.level = level
        for x, lvl in pairs:
            if lvl >= level:
                row._levels[x] = lvl
                row.bucket.add(x)
        row._shrink()
        return row

    def _level_of(self, x: int) -> int:
        lvl = self._levels.get(x)
        if lvl is None:
            if self.h is None:
                raise ValueError("level unknown for element of a "
                                 "hashless row")
            lvl = self.h.cell_level(x)
        return lvl

    def process(self, x: int) -> None:
        """Insert ``x`` if it lies in the current cell; raise the level
        while the bucket violates the ``< Thresh`` invariant."""
        lvl = self._level_of(x)
        if lvl < self.level:
            return
        self._levels[x] = lvl  # Only bucket members are cached.
        self.bucket.add(x)
        self._shrink()

    def process_batch(self, xs) -> None:
        """Process a chunk of stream elements with one vectorised hash
        evaluation (numpy bit-packed ``cell_levels_batch``)."""
        levels = self.h.cell_levels_batch(xs)
        bucket = self.bucket
        current = self.level
        for x, lvl in zip(xs, levels):
            lvl = int(lvl)
            if lvl >= current:
                x = int(x)
                self._levels[x] = lvl
                bucket.add(x)
        self._shrink()

    def _shrink(self) -> None:
        shrunk = False
        while len(self.bucket) >= self.thresh \
                and self.level < self.out_bits:
            self.level += 1
            shrunk = True
            self.bucket = {y for y in self.bucket
                           if self._level_of(y) >= self.level}
        if shrunk:
            self._levels = {y: lvl for y, lvl in self._levels.items()
                            if y in self.bucket}

    def merge(self, other: "BucketingRow") -> None:
        """Combine with a sketch built from another sub-stream using the
        same hash function (distributed Section 4)."""
        if other.h is not self.h:
            if other.h is None or self.h is None \
                    or other.h.rows != self.h.rows \
                    or other.h.offsets != self.h.offsets:
                raise ValueError("cannot merge rows with different hashes")
        self.level = max(self.level, other.level)
        self._levels.update(other._levels)
        merged = {y for y in self.bucket | other.bucket
                  if self._level_of(y) >= self.level}
        self.bucket = merged
        self._shrink()
        # _shrink prunes the level cache only when it raises the level;
        # after a merge the cache may also hold elements the max-level
        # filter above dropped, so prune unconditionally.
        if len(self._levels) > len(self.bucket):
            self._levels = {y: lvl for y, lvl in self._levels.items()
                            if y in self.bucket}

    def estimate(self) -> float:
        """``|bucket| * 2^level``."""
        return len(self.bucket) * float(1 << self.level)

    def sketch_state(self):
        """``(sorted bucket, level)`` -- used by the sketch-equivalence
        experiment (E19)."""
        return (tuple(sorted(self.bucket)), self.level)


class BucketingF0:
    """Median over ``t`` independent :class:`BucketingRow` repetitions."""

    def __init__(self, universe_bits: int, params: SketchParams,
                 rng: RandomSource, kernel: str | None = None) -> None:
        self.universe_bits = universe_bits
        self.params = params
        family = ToeplitzHashFamily(universe_bits, universe_bits,
                                    kernel=kernel)
        self.rows: List[BucketingRow] = [
            BucketingRow(family.sample(rng), params.thresh)
            for _ in range(params.repetitions)
        ]

    def process(self, x: int) -> None:
        for row in self.rows:
            row.process(x)

    def process_batch(self, xs: Sequence[int]) -> None:
        """Feed a whole stream chunk; duplicates are removed once, up
        front, then each row evaluates its hash over the chunk in one
        vectorised pass (see ``LinearHash.cell_levels_batch``)."""
        if len(xs) == 0:
            return
        if _np is not None and self.universe_bits <= 64:
            xs = _np.unique(_np.asarray(xs, dtype=_np.uint64))
        for row in self.rows:
            row.process_batch(xs)

    def merge(self, other: "BucketingF0") -> None:
        """Row-wise combine with a sketch built from the same seeds."""
        if len(other.rows) != len(self.rows):
            raise ValueError("cannot merge sketches of different widths")
        for mine, theirs in zip(self.rows, other.rows):
            mine.merge(theirs)

    def estimate(self) -> float:
        return median([row.estimate() for row in self.rows])

    def space_bits(self) -> int:
        """Rough footprint: seed bits plus bucket contents, per row."""
        return sum(row.h.seed_bits + len(row.bucket) * self.universe_bits
                   for row in self.rows)

    def to_bytes(self) -> bytes:
        """Serialize to the versioned wire format (see
        :mod:`repro.store.serialize`)."""
        from repro.store.serialize import dumps
        return dumps(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BucketingF0":
        """Decode a frame produced by :meth:`to_bytes`."""
        from repro.store.serialize import loads_typed
        return loads_typed(data, cls)
