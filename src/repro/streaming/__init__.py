"""Classic F0 (distinct elements) streaming sketches.

Implements the paper's unified view of the three hashing-based F0
algorithms (Section 3, Algorithms 1-4):

* :class:`BucketingF0` -- Gibbons--Tirthapura level-sampling;
* :class:`MinimumF0` -- Bar-Yossef et al.'s k-minimum-values;
* :class:`EstimationF0` -- the trailing-zero sketch (needs a rough estimate
  ``r``, supplied by :class:`FlajoletMartinF0`);
* :class:`FlajoletMartinF0` -- the constant-factor rough estimator;
* :class:`ExactF0` -- set-based ground truth.

All sketches expose ``process(x)`` / ``estimate()`` plus ``merge`` (used by
the distributed protocols of Section 4), and share :class:`SketchParams`
which carries the paper's constants ``Thresh = 96/eps^2`` and
``t = 35 log(1/delta)``.
"""

from repro.streaming.base import F0Estimator, SketchParams, compute_f0
from repro.streaming.bucketing import BucketingF0, BucketingRow
from repro.streaming.estimation import EstimationF0, EstimationRow
from repro.streaming.exact import ExactF0
from repro.streaming.flajolet_martin import FlajoletMartinF0
from repro.streaming.minimum import MinimumF0, MinimumRow
from repro.streaming.streams import (
    shuffled_stream_with_f0,
    zipf_like_stream,
)

__all__ = [
    "BucketingF0",
    "BucketingRow",
    "EstimationF0",
    "EstimationRow",
    "ExactF0",
    "F0Estimator",
    "FlajoletMartinF0",
    "MinimumF0",
    "MinimumRow",
    "SketchParams",
    "compute_f0",
    "shuffled_stream_with_f0",
    "zipf_like_stream",
]
