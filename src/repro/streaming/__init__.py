"""Classic F0 (distinct elements) streaming sketches.

Implements the paper's unified view of the three hashing-based F0
algorithms (Section 3, Algorithms 1-4):

* :class:`BucketingF0` -- Gibbons--Tirthapura level-sampling;
* :class:`MinimumF0` -- Bar-Yossef et al.'s k-minimum-values;
* :class:`EstimationF0` -- the trailing-zero sketch (needs a rough estimate
  ``r``, supplied by :class:`FlajoletMartinF0`);
* :class:`FlajoletMartinF0` -- the constant-factor rough estimator;
* :class:`ExactF0` -- set-based ground truth.

All sketches implement the :class:`F0Sketch` contract -- ``process(x)`` /
``process_batch(chunk)`` / ``merge(other)`` / ``estimate()`` /
``space_bits()`` (merge is what the distributed protocols of Section 4
exploit) -- and share :class:`SketchParams` which carries the paper's
constants ``Thresh = 96/eps^2`` and ``t = 35 log(1/delta)``.  The
:func:`compute_f0` driver chunks any iterable through the batch paths,
and :class:`ShardedF0` partitions a stream across sketch replicas and
merges -- both bit-identical to scalar ingestion by the sketches'
set-semantics invariant.  :class:`WindowedF0` wraps any of them in a
ring of mergeable sub-sketches with TTL rotation for sliding-window
("uniques in the last hour") estimates.
"""

from repro.streaming.base import (
    DEFAULT_CHUNK_SIZE,
    F0Estimator,
    F0Sketch,
    SketchParams,
    chunked,
    compute_f0,
)
from repro.streaming.bucketing import BucketingF0, BucketingRow
from repro.streaming.estimation import EstimationF0, EstimationRow
from repro.streaming.exact import ExactF0
from repro.streaming.flajolet_martin import FlajoletMartinF0
from repro.streaming.minimum import MinimumF0, MinimumRow
from repro.streaming.sharded import ShardedF0
from repro.streaming.streams import (
    iter_shuffled_stream_with_f0,
    iter_zipf_like_stream,
    shuffled_stream_with_f0,
    zipf_like_stream,
)
from repro.streaming.windowed import WindowedF0

__all__ = [
    "BucketingF0",
    "BucketingRow",
    "DEFAULT_CHUNK_SIZE",
    "EstimationF0",
    "EstimationRow",
    "ExactF0",
    "F0Estimator",
    "F0Sketch",
    "FlajoletMartinF0",
    "MinimumF0",
    "MinimumRow",
    "ShardedF0",
    "SketchParams",
    "WindowedF0",
    "chunked",
    "compute_f0",
    "iter_shuffled_stream_with_f0",
    "iter_zipf_like_stream",
    "shuffled_stream_with_f0",
    "zipf_like_stream",
]
