"""The rough Flajolet--Martin estimator.

One pairwise-independent hash; track the maximum number of trailing zeros
``R`` over the stream; output ``2^R``.  Alon--Matias--Szegedy: this is a
factor-5 approximation with probability >= 3/5.  The paper runs it "in
parallel" to supply the Estimation algorithm's coarse parameter ``r``; the
median-of-repetitions variant here concentrates the success probability so
the promise ``2 F0 <= 2^r <= 50 F0`` holds except with small probability.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.common.rng import RandomSource
from repro.common.stats import median
from repro.hashing.xor import XorHashFamily

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


class FlajoletMartinF0:
    """Median of ``repetitions`` independent single-hash FM estimators."""

    def __init__(self, universe_bits: int, rng: RandomSource,
                 repetitions: int = 1, kernel: str | None = None) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.universe_bits = universe_bits
        family = XorHashFamily(universe_bits, universe_bits, kernel=kernel)
        self.hashes = [family.sample(rng) for _ in range(repetitions)]
        self.max_trail: List[int] = [-1] * repetitions  # -1: empty stream.

    def process(self, x: int) -> None:
        for i, h in enumerate(self.hashes):
            t = h.trail_zeros(x)
            if t > self.max_trail[i]:
                self.max_trail[i] = t

    def process_batch(self, xs: Sequence[int]) -> None:
        """Feed a chunk: one vectorised hash-and-trail-zeros sweep per
        repetition (deduped once up front)."""
        if len(xs) == 0:
            return
        if _np is None or self.universe_bits > 64:
            for x in xs:
                self.process(int(x))
            return
        xs = _np.unique(_np.asarray(xs, dtype=_np.uint64))
        for i, h in enumerate(self.hashes):
            t = int(_np.max(h.trail_zeros_batch(xs)))
            if t > self.max_trail[i]:
                self.max_trail[i] = t

    @staticmethod
    def merge_levels(mine: List[int], theirs: Sequence[int]) -> List[int]:
        """Entry-wise max of two max-trail-zero vectors -- the combine
        rule shared with the distributed Estimation protocol's FM round."""
        if len(mine) != len(theirs):
            raise ValueError("cannot merge level vectors of different "
                             "widths")
        return [max(a, b) for a, b in zip(mine, theirs)]

    def merge(self, other: "FlajoletMartinF0") -> None:
        """Combine with an FM sketch built from the same seeds."""
        self.max_trail = self.merge_levels(self.max_trail, other.max_trail)

    def estimate(self) -> float:
        """``2^R`` (median over repetitions); 0 for an empty stream."""
        r = median(self.max_trail)
        return 0.0 if r < 0 else float(1 << r)

    def rough_r(self, shift: int = 3) -> int:
        """A coarse level for the Estimation algorithm.

        ``2^(R + shift)`` targets the Lemma 3 promise window
        ``[2 F0, 50 F0]``: with the median ``2^R`` within a factor 5 of F0,
        ``shift = 3`` lands ``2^r`` in ``[8 F0 / 5, 40 F0]``, inside the
        window whenever ``2^R >= 1.25 F0 / 5``.  Benchmark E3 measures how
        often the promise actually holds.
        """
        r = median(self.max_trail)
        return max(0, min(int(r) + shift, self.universe_bits))

    def space_bits(self) -> int:
        """Seed bits plus one trail-zero counter per repetition."""
        counter_bits = max(1, self.universe_bits.bit_length())
        return sum(h.seed_bits + counter_bits for h in self.hashes)

    def to_bytes(self) -> bytes:
        """Serialize to the versioned wire format (see
        :mod:`repro.store.serialize`)."""
        from repro.store.serialize import dumps
        return dumps(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "FlajoletMartinF0":
        """Decode a frame produced by :meth:`to_bytes`."""
        from repro.store.serialize import loads_typed
        return loads_typed(data, cls)
