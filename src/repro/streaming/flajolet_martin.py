"""The rough Flajolet--Martin estimator.

One pairwise-independent hash; track the maximum number of trailing zeros
``R`` over the stream; output ``2^R``.  Alon--Matias--Szegedy: this is a
factor-5 approximation with probability >= 3/5.  The paper runs it "in
parallel" to supply the Estimation algorithm's coarse parameter ``r``; the
median-of-repetitions variant here concentrates the success probability so
the promise ``2 F0 <= 2^r <= 50 F0`` holds except with small probability.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import RandomSource
from repro.common.stats import median
from repro.hashing.xor import XorHashFamily


class FlajoletMartinF0:
    """Median of ``repetitions`` independent single-hash FM estimators."""

    def __init__(self, universe_bits: int, rng: RandomSource,
                 repetitions: int = 1) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.universe_bits = universe_bits
        family = XorHashFamily(universe_bits, universe_bits)
        self.hashes = [family.sample(rng) for _ in range(repetitions)]
        self.max_trail: List[int] = [-1] * repetitions  # -1: empty stream.

    def process(self, x: int) -> None:
        for i, h in enumerate(self.hashes):
            t = h.trail_zeros(x)
            if t > self.max_trail[i]:
                self.max_trail[i] = t

    def estimate(self) -> float:
        """``2^R`` (median over repetitions); 0 for an empty stream."""
        r = median(self.max_trail)
        return 0.0 if r < 0 else float(1 << r)

    def rough_r(self, shift: int = 3) -> int:
        """A coarse level for the Estimation algorithm.

        ``2^(R + shift)`` targets the Lemma 3 promise window
        ``[2 F0, 50 F0]``: with the median ``2^R`` within a factor 5 of F0,
        ``shift = 3`` lands ``2^r`` in ``[8 F0 / 5, 40 F0]``, inside the
        window whenever ``2^R >= 1.25 F0 / 5``.  Benchmark E3 measures how
        often the promise actually holds.
        """
        r = median(self.max_trail)
        return max(0, min(int(r) + shift, self.universe_bits))
