"""Synthetic stream generators with known ground-truth F0."""

from __future__ import annotations

from typing import List

from repro.common.errors import InvalidParameterError
from repro.common.rng import RandomSource


def shuffled_stream_with_f0(rng: RandomSource, universe_bits: int,
                            f0: int, length: int) -> List[int]:
    """A stream of ``length`` items over exactly ``f0`` distinct elements.

    Elements are sampled without replacement from ``{0,1}^universe_bits``;
    every element appears at least once, extra slots are uniform repeats,
    and the whole stream is shuffled (so order-sensitivity bugs surface).
    """
    if f0 > (1 << universe_bits):
        raise InvalidParameterError("f0 exceeds universe size")
    if length < f0:
        raise InvalidParameterError("length must be >= f0")
    universe = 1 << universe_bits
    if universe_bits <= 22:
        elements = rng.sample(range(universe), f0)
    else:
        chosen = set()
        while len(chosen) < f0:
            chosen.add(rng.getrandbits(universe_bits))
        elements = list(chosen)
    stream = list(elements)
    stream.extend(rng.choice(elements) for _ in range(length - f0))
    rng.shuffle(stream)
    return stream


def zipf_like_stream(rng: RandomSource, universe_bits: int,
                     num_elements: int, length: int,
                     exponent: float = 1.2) -> List[int]:
    """A skewed stream: element ranks follow a Zipf-like law.

    Heavy hitters dominate, the tail is rare -- the regime where naive
    sampling underestimates F0 but hashing sketches do not.  The realised
    F0 is whatever subset of the ``num_elements`` support actually appears;
    compute it with :class:`repro.streaming.exact.ExactF0`.
    """
    if num_elements > (1 << universe_bits):
        raise InvalidParameterError("support exceeds universe size")
    if exponent <= 0:
        raise InvalidParameterError("exponent must be positive")
    universe = 1 << universe_bits
    if universe_bits <= 22:
        support = rng.sample(range(universe), num_elements)
    else:
        chosen = set()
        while len(chosen) < num_elements:
            chosen.add(rng.getrandbits(universe_bits))
        support = list(chosen)
    weights = [1.0 / ((rank + 1) ** exponent)
               for rank in range(num_elements)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def draw() -> int:
        u = rng.random()
        lo, hi = 0, num_elements - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return support[lo]

    return [draw() for _ in range(length)]
