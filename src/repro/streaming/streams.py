"""Synthetic stream generators with known ground-truth F0.

Two shapes per profile: the original list builders (kept byte-identical
for the fixed-seed accuracy tests) and chunked generator variants
(``iter_*``) that hold O(support) state instead of materialising
benchmark-scale streams as Python lists before ingestion -- feed them
straight to :func:`repro.streaming.base.compute_f0` or
:meth:`repro.streaming.sharded.ShardedF0.process_stream`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List

from repro.common.errors import InvalidParameterError
from repro.common.rng import RandomSource


def _sample_support(rng: RandomSource, universe_bits: int,
                    count: int) -> List[int]:
    """``count`` distinct elements of ``{0,1}^universe_bits``.

    Small universes sample without replacement directly; wide ones draw
    random bit strings until enough are distinct (collisions are rare).
    """
    universe = 1 << universe_bits
    if universe_bits <= 22:
        return rng.sample(range(universe), count)
    chosen = set()
    while len(chosen) < count:
        chosen.add(rng.getrandbits(universe_bits))
    return list(chosen)


def shuffled_stream_with_f0(rng: RandomSource, universe_bits: int,
                            f0: int, length: int) -> List[int]:
    """A stream of ``length`` items over exactly ``f0`` distinct elements.

    Elements are sampled without replacement from ``{0,1}^universe_bits``;
    every element appears at least once, extra slots are uniform repeats,
    and the whole stream is shuffled (so order-sensitivity bugs surface).
    """
    if f0 > (1 << universe_bits):
        raise InvalidParameterError("f0 exceeds universe size")
    if length < f0:
        raise InvalidParameterError("length must be >= f0")
    elements = _sample_support(rng, universe_bits, f0)
    stream = list(elements)
    stream.extend(rng.choice(elements) for _ in range(length - f0))
    rng.shuffle(stream)
    return stream


def iter_shuffled_stream_with_f0(rng: RandomSource, universe_bits: int,
                                 f0: int, length: int,
                                 chunk_size: int = 4096
                                 ) -> Iterator[List[int]]:
    """Chunked generator variant of :func:`shuffled_stream_with_f0`.

    Yields lists of at most ``chunk_size`` items; exactly ``f0`` distinct
    elements appear, each at least once, with first occurrences placed at
    uniformly random positions (each slot is a fresh first-occurrence
    with probability ``remaining_mandatory / remaining_slots``) and the
    other slots uniform repeats.  Holds O(f0 + chunk_size) memory instead
    of the full ``length``-item list.
    """
    if f0 > (1 << universe_bits):
        raise InvalidParameterError("f0 exceeds universe size")
    if length < f0:
        raise InvalidParameterError("length must be >= f0")
    if chunk_size < 1:
        raise InvalidParameterError("chunk_size must be >= 1")
    elements = _sample_support(rng, universe_bits, f0)
    pending = list(elements)
    rng.shuffle(pending)
    remaining = length
    chunk: List[int] = []
    while remaining:
        if len(pending) == remaining \
                or rng.random() * remaining < len(pending):
            x = pending.pop()
        else:
            x = elements[rng.randrange(f0)]
        chunk.append(x)
        remaining -= 1
        if len(chunk) == chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _zipf_cumulative(num_elements: int, exponent: float) -> List[float]:
    """The normalised cumulative rank distribution of a Zipf-like law."""
    weights = [1.0 / ((rank + 1) ** exponent)
               for rank in range(num_elements)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    return cumulative


def zipf_like_stream(rng: RandomSource, universe_bits: int,
                     num_elements: int, length: int,
                     exponent: float = 1.2) -> List[int]:
    """A skewed stream: element ranks follow a Zipf-like law.

    Heavy hitters dominate, the tail is rare -- the regime where naive
    sampling underestimates F0 but hashing sketches do not.  The realised
    F0 is whatever subset of the ``num_elements`` support actually appears;
    compute it with :class:`repro.streaming.exact.ExactF0`.
    """
    if num_elements > (1 << universe_bits):
        raise InvalidParameterError("support exceeds universe size")
    if exponent <= 0:
        raise InvalidParameterError("exponent must be positive")
    support = _sample_support(rng, universe_bits, num_elements)
    cumulative = _zipf_cumulative(num_elements, exponent)
    return [support[min(bisect_left(cumulative, rng.random()),
                        num_elements - 1)]
            for _ in range(length)]


def iter_zipf_like_stream(rng: RandomSource, universe_bits: int,
                          num_elements: int, length: int,
                          exponent: float = 1.2,
                          chunk_size: int = 4096) -> Iterator[List[int]]:
    """Chunked generator variant of :func:`zipf_like_stream`: same draw
    law, O(num_elements + chunk_size) memory."""
    if num_elements > (1 << universe_bits):
        raise InvalidParameterError("support exceeds universe size")
    if exponent <= 0:
        raise InvalidParameterError("exponent must be positive")
    if chunk_size < 1:
        raise InvalidParameterError("chunk_size must be >= 1")
    support = _sample_support(rng, universe_bits, num_elements)
    cumulative = _zipf_cumulative(num_elements, exponent)
    remaining = length
    while remaining:
        take = min(chunk_size, remaining)
        yield [support[min(bisect_left(cumulative, rng.random()),
                           num_elements - 1)]
               for _ in range(take)]
        remaining -= take
