"""Sliding-window F0: a ring of mergeable sub-sketches with TTL rotation.

The paper's sketches answer "distinct elements ever seen"; production
distinct-counting is almost always windowed ("uniques in the last
hour").  :class:`WindowedF0` closes that gap without touching the base
algorithms: it wraps any sketch implementing the
:class:`~repro.streaming.base.F0Sketch` contract in a ring of ``K``
sub-sketches, each covering one *epoch* of ``window / K`` logical time.
Ingest lands in the newest epoch's bucket; :meth:`advance` rotates the
ring (expired buckets are reset from a pristine prototype -- the TTL
eviction); :meth:`estimate` merges the live buckets, so the answer is
always "distinct elements in the last ``window`` time units" with the
wrapped sketch's own (eps, delta) guarantee per window.

Time is **logical** by default: nothing rotates unless :meth:`advance`
is called with an explicit timestamp, which is what makes seeded soak
episodes (``tools/soak.py``) and the property suite deterministic --
the same stream of ``(advance, ingest)`` events always produces the
same bytes.  Pass ``clock=time.monotonic`` for wall-clock rotation in a
live process.

The ring rides the existing protocols unchanged:

* **Merge.**  Two windows with equal geometry merge by aligning their
  rings on *absolute* epoch numbers (bucket ``i`` always holds an epoch
  ``e`` with ``e % K == i``): the older side is first rotated forward,
  then buckets holding the same epoch merge element-wise and expired
  epochs are dropped.  Because each bucket is a set-semantics sketch,
  merge stays associative, commutative and idempotent, and
  rotate-then-merge equals merge-then-rotate -- the invariants
  ``tests/test_windowed.py`` pins with hypothesis.
* **Serialization.**  :meth:`to_bytes` rides
  :mod:`repro.store.serialize` (kind tag ``0x16``, prototype and
  buckets nested as self-describing frames), so windows snapshot,
  restore and travel the service wire like any other sketch.
* **Sharding / serving.**  :class:`~repro.streaming.sharded.ShardedF0`
  forwards :meth:`advance` / :meth:`estimate_window` to windowed
  shards, and the store/router expose them as
  ``POST .../advance`` and ``GET .../estimate?window=S``.
"""

from __future__ import annotations

import copy
import math
from typing import Callable, List, Optional, Sequence

from repro.common.errors import InvalidParameterError
from repro.streaming.base import F0Sketch, VersionedCache


class WindowedF0:
    """Sliding-window wrapper over any mergeable F0 sketch.

    Args:
        prototype: a freshly built (never ingested) sketch implementing
            the :class:`~repro.streaming.base.F0Sketch` contract.  It is
            kept pristine as the eviction template -- every rotated
            bucket is a deep copy of it, so all buckets share identical
            hash seeds forever and merge cleanly.
        window: the window span in logical time units (> 0).
        buckets: ring size ``K`` (>= 1); the rotation granularity is
            ``window / K`` (estimates cover between ``window`` and
            ``window + window/K`` of stream history, the classic ring
            quantisation).
        clock: optional time source; when set, ``process`` /
            ``process_batch`` / ``estimate`` auto-advance to
            ``clock()`` first.  ``None`` (default) rotates only on
            explicit :meth:`advance` calls -- deterministic logical
            time, what the soak harness and the service use.

    Raises:
        InvalidParameterError: non-positive ``window`` or ``buckets``,
            or a prototype that already absorbed items.
    """

    def __init__(self, prototype: F0Sketch, window: float,
                 buckets: int = 8,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if not window > 0:
            raise InvalidParameterError("window must be positive")
        if buckets < 1:
            raise InvalidParameterError("buckets must be >= 1")
        if prototype.estimate() != 0:
            raise InvalidParameterError(
                "the windowed prototype must be a fresh (empty) sketch")
        self.window = float(window)
        self._proto: F0Sketch = copy.deepcopy(prototype)
        self.buckets: List[F0Sketch] = [
            copy.deepcopy(prototype) for _ in range(buckets)]
        # Bucket i holds epoch e with e % K == i; the ring always holds
        # the K consecutive epochs (_epoch - K, _epoch].
        self._epoch = 0
        self._bucket_epochs: List[int] = [0] * buckets
        for e in range(-buckets + 1, 1):
            self._bucket_epochs[e % buckets] = e
        # A boolean "absorbed items" flag per bucket, NOT a count: a
        # flag merges by OR, which is idempotent and partition-
        # invariant, so a re-folded delta frame or a sharded run stays
        # bit-identical to the serial run.  (An additive counter would
        # double-count on idempotent re-merges.)
        self._bucket_dirty: List[bool] = [False] * buckets
        self.evictions = 0  # Non-empty buckets reset by rotation.
        self._clock = clock
        self._init_caches()

    # -- geometry ----------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        """Ring size ``K``."""
        return len(self.buckets)

    @property
    def width(self) -> float:
        """Logical time span of one bucket (``window / K``)."""
        return self.window / len(self.buckets)

    @property
    def epoch(self) -> int:
        """The newest epoch the ring currently covers."""
        return self._epoch

    @property
    def version(self) -> int:
        """Mutation counter (bumped on every ingest/merge/rotation)."""
        return self._version

    def _init_caches(self) -> None:
        """Fresh mutation counter + empty estimate caches (also the
        post-decode/unpickle hook -- caches never travel the wire)."""
        self._version = 0
        self._window_cache = VersionedCache()

    def __getstate__(self):
        """Pickle the ring state only: caches are rebuilt on load and a
        wall clock must never leak across a process boundary (replicas
        in a worker pool advance by explicit merge, not by local
        time)."""
        return {"window": self.window, "_proto": self._proto,
                "buckets": self.buckets, "_epoch": self._epoch,
                "_bucket_epochs": self._bucket_epochs,
                "_bucket_dirty": self._bucket_dirty,
                "evictions": self.evictions}

    def __setstate__(self, state) -> None:
        self.window = state["window"]
        self._proto = state["_proto"]
        self.buckets = state["buckets"]
        self._epoch = state["_epoch"]
        self._bucket_epochs = state["_bucket_epochs"]
        self._bucket_dirty = state["_bucket_dirty"]
        self.evictions = state["evictions"]
        self._clock = None
        self._init_caches()

    # -- rotation ----------------------------------------------------------

    def advance(self, now: float) -> int:
        """Rotate the ring forward to logical time ``now``.

        Buckets whose epoch falls out of the window are reset from the
        pristine prototype (counted in :attr:`evictions` when they held
        items).  Time never moves backwards: a stale ``now`` is a
        no-op, so replayed or out-of-order advances are harmless.

        Returns the number of buckets rotated (0 when ``now`` stays
        inside the current epoch).
        """
        return self._rotate_to(int(math.floor(now / self.width)))

    def _rotate_to(self, target: int) -> int:
        """Advance the newest epoch to ``target`` (monotonic clamp)."""
        if target <= self._epoch:
            return 0
        k = len(self.buckets)
        # Only the newest K epochs in (_epoch, target] need fresh
        # buckets; skipping a whole window forward rotates each slot
        # exactly once however large the gap.
        rotated = 0
        for e in range(max(self._epoch + 1, target - k + 1), target + 1):
            idx = e % k
            if self._bucket_dirty[idx]:
                self.evictions += 1
            self.buckets[idx] = copy.deepcopy(self._proto)
            self._bucket_epochs[idx] = e
            self._bucket_dirty[idx] = False
            rotated += 1
        self._epoch = target
        self._version += 1
        return rotated

    def _tick(self) -> None:
        """Auto-advance from the clock, when one was configured."""
        if self._clock is not None:
            self.advance(self._clock())

    # -- ingestion ---------------------------------------------------------

    def process(self, x: int) -> None:
        """Feed one item into the current epoch's bucket."""
        self._tick()
        idx = self._epoch % len(self.buckets)
        self.buckets[idx].process(x)
        self._bucket_dirty[idx] = True
        self._version += 1

    def process_batch(self, xs: Sequence[int]) -> None:
        """Feed a chunk into the current epoch's bucket (one vectorised
        sweep through the wrapped sketch's batch path)."""
        if len(xs) == 0:
            return
        self._tick()
        idx = self._epoch % len(self.buckets)
        self.buckets[idx].process_batch(xs)
        self._bucket_dirty[idx] = True
        self._version += 1

    # -- merge -------------------------------------------------------------

    def merge(self, other: "WindowedF0") -> None:
        """Fold another window (same prototype seeds and geometry).

        The rings align on absolute epochs: this side first rotates
        forward to the other's epoch (so a merge can never move time
        backwards), then buckets holding the *same* epoch merge
        element-wise; epochs the newer ring has already expired are
        dropped.  ``other`` is never mutated.

        Raises:
            InvalidParameterError: not a :class:`WindowedF0`, or the
                window span / bucket count differ.
        """
        if not isinstance(other, WindowedF0):
            raise InvalidParameterError(
                "can only merge another WindowedF0")
        if other.window != self.window \
                or other.num_buckets != self.num_buckets:
            raise InvalidParameterError(
                "windowed sketches must share window span and bucket "
                "count to merge")
        self._rotate_to(other._epoch)
        for idx in range(len(self.buckets)):
            if other._bucket_epochs[idx] == self._bucket_epochs[idx]:
                self.buckets[idx].merge(other.buckets[idx])
                self._bucket_dirty[idx] = (self._bucket_dirty[idx]
                                           or other._bucket_dirty[idx])
        self._version += 1

    # -- estimates ---------------------------------------------------------

    def _merged_over(self, count: int) -> F0Sketch:
        """One sketch holding the union of the newest ``count`` epochs."""
        combined = copy.deepcopy(self._proto)
        k = len(self.buckets)
        for e in range(self._epoch - count + 1, self._epoch + 1):
            combined.merge(self.buckets[e % k])
        return combined

    def estimate(self) -> float:
        """Distinct elements over the last full window (merge of every
        live bucket, memoised against the mutation version)."""
        self._tick()
        return self.estimate_window(self.window)

    def estimate_window(self, span: float) -> float:
        """Distinct elements over the trailing ``span`` time units.

        ``span`` is quantised up to whole buckets (``ceil(span /
        width)`` newest epochs) and capped at the full window; results
        are memoised per span against the mutation version, so repeated
        reads of a quiet window do zero merge work.

        Raises:
            InvalidParameterError: non-positive ``span``, or a span
                beyond the configured window (the older data is gone).
        """
        if not span > 0:
            raise InvalidParameterError("window span must be positive")
        k = len(self.buckets)
        count = math.ceil(span / self.width - 1e-9)
        if count > k:
            raise InvalidParameterError(
                f"span {span} exceeds the configured window "
                f"{self.window}")
        count = max(1, min(k, count))
        cache = self._window_cache.get_or_build(self._version, dict)
        if count not in cache:
            cache[count] = self._merged_over(count).estimate()
        return cache[count]

    # -- accounting --------------------------------------------------------

    def space_bits(self) -> int:
        """Total footprint of the ring (sum over buckets) -- the number
        the soak harness's byte budgets gate on."""
        return sum(bucket.space_bits() for bucket in self.buckets)

    def populated_buckets(self) -> int:
        """Live buckets that have absorbed items (monitoring)."""
        return sum(1 for dirty in self._bucket_dirty if dirty)

    # -- wire format -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the versioned wire format (prototype and every
        bucket nest as self-describing frames; see
        :mod:`repro.store.serialize`)."""
        from repro.store.serialize import dumps
        return dumps(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "WindowedF0":
        """Decode a frame produced by :meth:`to_bytes`."""
        from repro.store.serialize import loads_typed
        return loads_typed(data, cls)
