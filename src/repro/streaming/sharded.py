"""Shard-parallel ingestion over mergeable F0 sketches.

:class:`ShardedF0` partitions one logical stream across ``k`` replicas of
a sketch that all share the same hash seeds (clones of a freshly built
prototype), and answers estimates by merging the replicas -- the
single-machine analogue of the Section 4 coordinator combine step.
Because every sketch in this package is a function of the *set* of
distinct elements only, the round-robin split is semantically invisible:
for a fixed prototype the merged estimate is bit-identical to feeding the
whole stream through one sketch.

The replicas are independent objects, so callers may hand them to worker
threads or processes and ``merge`` the results back; this class only
fixes the partitioning and combine conventions.
"""

from __future__ import annotations

import copy
from typing import Iterable, List, Sequence

from repro.common.errors import InvalidParameterError
from repro.streaming.base import DEFAULT_CHUNK_SIZE, F0Sketch, chunked


class ShardedF0:
    """Round-robin partition of a stream across ``k`` sketch replicas.

    ``prototype`` must be a freshly built (empty) sketch implementing the
    :class:`~repro.streaming.base.F0Sketch` contract; it becomes shard 0
    and the remaining ``shards - 1`` replicas are deep copies, so all
    shards share identical hash seeds and merge cleanly.
    """

    def __init__(self, prototype: F0Sketch, shards: int) -> None:
        if shards < 1:
            raise InvalidParameterError("shards must be >= 1")
        self.shards: List[F0Sketch] = [prototype] + [
            copy.deepcopy(prototype) for _ in range(shards - 1)]
        self._cursor = 0  # Round-robin position for scalar ingestion.

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def process(self, x: int) -> None:
        """Route one item to the next shard in round-robin order."""
        self.shards[self._cursor].process(x)
        self._cursor = (self._cursor + 1) % len(self.shards)

    def process_batch(self, xs: Sequence[int]) -> None:
        """Split a chunk across the shards (strided round-robin), each
        shard ingesting its slice through its own batch path."""
        k = len(self.shards)
        for i, shard in enumerate(self.shards):
            part = xs[i::k]
            if len(part):
                shard.process_batch(part)

    def process_stream(self, stream: Iterable[int],
                       chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        """Chunk an iterable and scatter it across the shards."""
        for chunk in chunked(stream, chunk_size):
            self.process_batch(chunk)

    def merge(self, other: "ShardedF0") -> None:
        """Fold another sharded run (same prototype seeds) shard-wise."""
        if other.num_shards != self.num_shards:
            raise InvalidParameterError("shard counts differ")
        for mine, theirs in zip(self.shards, other.shards):
            mine.merge(theirs)

    def merged(self) -> F0Sketch:
        """One sketch holding the union of all shards (the coordinator
        combine); the shards themselves are left untouched."""
        combined = copy.deepcopy(self.shards[0])
        for shard in self.shards[1:]:
            combined.merge(shard)
        return combined

    def estimate(self) -> float:
        """Estimate of the merged sketch."""
        return self.merged().estimate()

    def space_bits(self) -> int:
        """Total footprint across shards (what a k-site run would hold)."""
        return sum(shard.space_bits() for shard in self.shards)
