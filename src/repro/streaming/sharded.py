"""Shard-parallel ingestion over mergeable F0 sketches.

:class:`ShardedF0` partitions one logical stream across ``k`` replicas of
a sketch that all share the same hash seeds (clones of a freshly built
prototype), and answers estimates by merging the replicas -- the
single-machine analogue of the Section 4 coordinator combine step.
Because every sketch in this package is a function of the *set* of
distinct elements only, the round-robin split is semantically invisible:
for a fixed prototype the merged estimate is bit-identical to feeding the
whole stream through one sketch.

Round-robin operates on **whole chunks**: ``process_batch`` hands the
entire chunk to the next shard in rotation rather than re-slicing it per
element, so every shard's batch path always sees full chunks (a strided
``xs[i::k]`` split would hand each shard a k-times smaller slice and
degrade small tail chunks to near-scalar ingestion).  Set semantics make
the two partitions produce identical merged estimates.

``process_stream(..., workers=k)`` is the true process-pool scatter:
worker processes each own a shard replica, ingest their chunk partition
through the batch paths, and ship the pickled sketches back for
``merge`` (see :mod:`repro.parallel.streaming`).
"""

from __future__ import annotations

import copy
from typing import Iterable, List, Optional, Sequence

from repro.common.errors import InvalidParameterError
from repro.parallel.executor import Executor, executor_for
from repro.parallel.streaming import ingest_stream_parallel
from repro.streaming.base import (
    DEFAULT_CHUNK_SIZE,
    F0Sketch,
    VersionedCache,
    chunked,
)


class ShardedF0:
    """Round-robin partition of a stream across ``k`` sketch replicas.

    Reads are served from a **cached merged view**: the combined sketch
    is a pure function of the mutation history, so it is memoised
    against a mutation version counter and rebuilt only after the next
    ingest/merge (``merge_rebuilds`` counts the rebuilds -- the read
    path's instrumentation hook).  A warm ``estimate()`` therefore does
    zero merge work, which is what lets a service front many concurrent
    readers with one sharded sketch.

    Args:
        prototype: a freshly built (empty) sketch implementing the
            :class:`~repro.streaming.base.F0Sketch` contract; it
            becomes shard 0 and the remaining ``shards - 1`` replicas
            are deep copies, so all shards share identical hash seeds
            and merge cleanly.
        shards: number of replicas (>= 1).

    Raises:
        InvalidParameterError: ``shards < 1``.
    """

    def __init__(self, prototype: F0Sketch, shards: int) -> None:
        if shards < 1:
            raise InvalidParameterError("shards must be >= 1")
        self.shards: List[F0Sketch] = [prototype] + [
            copy.deepcopy(prototype) for _ in range(shards - 1)]
        self._cursor = 0  # Round-robin position for scalar ingestion.
        self._init_caches()

    def _init_caches(self) -> None:
        """Fresh mutation counter + empty merged-view cache (also the
        post-decode/unpickle hook -- caches never travel the wire)."""
        self._version = 0
        self._merged_cache = VersionedCache()
        self._estimate_cache = VersionedCache()
        self.merge_rebuilds = 0  # Times the merged view was recomputed.

    @property
    def version(self) -> int:
        """Mutation counter (bumped on every ingest/merge path)."""
        return self._version

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def __getstate__(self):
        """Pickle shards + cursor only: the merged view can be a whole
        extra sketch copy, never worth shipping across a process pool."""
        return {"shards": self.shards, "_cursor": self._cursor}

    def __setstate__(self, state) -> None:
        self.shards = state["shards"]
        self._cursor = state["_cursor"]
        self._init_caches()

    def process(self, x: int) -> None:
        """Route one item to the next shard in round-robin order."""
        self.shards[self._cursor].process(x)
        self._cursor = (self._cursor + 1) % len(self.shards)
        self._version += 1

    def process_batch(self, xs: Sequence[int]) -> None:
        """Hand the whole chunk to the next shard in round-robin order
        (full chunks keep the shard's vectorised batch path saturated)."""
        if len(xs) == 0:
            return
        self.shards[self._cursor].process_batch(xs)
        self._cursor = (self._cursor + 1) % len(self.shards)
        self._version += 1

    def process_stream(self, stream: Iterable[int],
                       chunk_size: int = DEFAULT_CHUNK_SIZE,
                       workers: int = 1,
                       executor: Optional[Executor] = None,
                       wire: str = "pickle") -> None:
        """Chunk an iterable and scatter it across the shards.

        Args:
            stream: any iterable of items (generators are never fully
                materialised).
            chunk_size: items per ingestion chunk.
            workers: ``1`` (the default) ingests inline with zero
                overhead; ``k > 1`` scatters whole chunks round-robin
                over a process pool, where each worker owns a shard
                replica and ingests its partition via ``process_batch``.
            executor: explicit :class:`~repro.parallel.executor.Executor`
                to use instead of resolving ``workers`` (caller keeps
                ownership).
            wire: how shard replicas cross the process boundary under a
                pool -- ``"pickle"`` (default) or ``"store"`` for the
                versioned binary frames of :mod:`repro.store.serialize`.

        Estimates are bit-identical for any worker count and either
        wire encoding.
        """
        with executor_for(workers, executor) as ex:
            if ex.is_serial:
                for chunk in chunked(stream, chunk_size):
                    self.process_batch(chunk)
            else:
                self.shards = ingest_stream_parallel(
                    ex, self.shards, chunked(stream, chunk_size),
                    wire=wire)
                self._version += 1

    def merge(self, other: "ShardedF0") -> None:
        """Fold another sharded run (same prototype seeds) shard-wise."""
        if other.num_shards != self.num_shards:
            raise InvalidParameterError("shard counts differ")
        for mine, theirs in zip(self.shards, other.shards):
            mine.merge(theirs)
        self._version += 1

    def merged_view(self) -> F0Sketch:
        """The cached combined sketch (the coordinator combine, memoised
        against the mutation version).

        The returned sketch is the cache's single shared instance:
        treat it as read-only.  Mutating callers want :meth:`merged`,
        which hands out a private copy.
        """
        def build() -> F0Sketch:
            self.merge_rebuilds += 1
            combined = copy.deepcopy(self.shards[0])
            for shard in self.shards[1:]:
                combined.merge(shard)
            return combined

        return self._merged_cache.get_or_build(self._version, build)

    def merged(self) -> F0Sketch:
        """One sketch holding the union of all shards (the coordinator
        combine); the shards themselves are left untouched.  The copy is
        the caller's to mutate -- read paths that only need to *look* at
        the union use :meth:`merged_view` and skip the copy too."""
        return copy.deepcopy(self.merged_view())

    def estimate(self) -> float:
        """Estimate of the merged view (cache-warm calls do zero merge
        work -- both the view and the resulting value are memoised)."""
        return self._estimate_cache.get_or_build(
            self._version, lambda: self.merged_view().estimate())

    def advance(self, now: float) -> int:
        """Rotate windowed shards forward to logical time ``now``.

        Forwarded to every shard (they share geometry, so all rotate in
        lock-step) and returns the buckets rotated on shard 0.

        Raises:
            InvalidParameterError: the shards are not windowed (see
                :class:`~repro.streaming.windowed.WindowedF0`).
        """
        if not hasattr(self.shards[0], "advance"):
            raise InvalidParameterError(
                "sharded sketch is not windowed: nothing to advance")
        rotated = 0
        for index, shard in enumerate(self.shards):
            count = shard.advance(now)
            if index == 0:
                rotated = count
        self._version += 1
        return rotated

    def estimate_window(self, span: float) -> float:
        """Windowed estimate of the merged view (shards merge first, so
        the answer is bit-identical to an unsharded window fed the same
        stream)."""
        return self.merged_view().estimate_window(span)

    def space_bits(self) -> int:
        """Total footprint across shards (what a k-site run would hold)."""
        return sum(shard.space_bits() for shard in self.shards)

    def to_bytes(self) -> bytes:
        """Serialize to the versioned wire format (see
        :mod:`repro.store.serialize`): each shard nests as its own
        self-describing frame."""
        from repro.store.serialize import dumps
        return dumps(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ShardedF0":
        """Decode a frame produced by :meth:`to_bytes`."""
        from repro.store.serialize import loads_typed
        return loads_typed(data, cls)
