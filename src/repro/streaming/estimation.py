"""The Estimation (trailing-zero) F0 sketch.

Each repetition ``i`` holds ``Thresh`` independent s-wise hash functions;
entry ``S[i][j]`` is the maximum ``TrailZero(h_ij(x))`` over the stream.
Given a coarse estimate ``r`` with ``2 F0 <= 2^r <= 50 F0`` (from the
FlajoletMartin sketch), the fraction of entries ``>= r`` estimates
``1 - (1 - 2^-r)^F0``, which inverts to the Lemma 3 estimator

    ln(1 - (1/Thresh) * sum_j 1{S[i][j] >= r}) / ln(1 - 2^-r).

Batch ingestion evaluates each s-wise polynomial over a whole chunk in
one vectorised GF(2^n) Horner sweep (``GF2n.eval_poly_batch``) and folds
the chunk's max trail-zero into the entry -- bit-identical to the scalar
path, since an entry depends only on the max over the distinct elements.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.common.errors import InvalidParameterError
from repro.common.rng import RandomSource
from repro.common.stats import median
from repro.hashing.kwise import KWiseHash, KWiseHashFamily
from repro.streaming.base import SketchParams, VersionedCache

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


def independence_for_eps(eps: float) -> int:
    """The paper's ``s = 10 log(1/eps)`` independence (at least 2)."""
    return max(2, math.ceil(10 * math.log(1.0 / min(eps, 0.99))))


class EstimationRow:
    """One repetition: ``Thresh`` hash functions and their max trail-zeros."""

    __slots__ = ("hashes", "maxima")

    def __init__(self, hashes: List[KWiseHash]) -> None:
        self.hashes = hashes
        self.maxima: List[int] = [0] * len(hashes)

    def process(self, x: int) -> None:
        for j, h in enumerate(self.hashes):
            t = h.trail_zeros(x)
            if t > self.maxima[j]:
                self.maxima[j] = t

    def process_batch(self, xs: Sequence[int]) -> None:
        """Fold a chunk's max trail-zero per hash into the entries (one
        vectorised field sweep per hash)."""
        if len(xs) == 0:
            return
        maxima = self.maxima
        for j, h in enumerate(self.hashes):
            t = h.max_trail_zeros(xs)
            if t > maxima[j]:
                maxima[j] = t

    def merge(self, other: "EstimationRow") -> None:
        """Entry-wise max (the distributed Section 4 combine step)."""
        if len(other.maxima) != len(self.maxima):
            raise ValueError("cannot merge rows of different widths")
        self.maxima = [max(a, b) for a, b in zip(self.maxima, other.maxima)]

    def estimate(self, r: int) -> float:
        """The Lemma 3 estimator for a given coarse level ``r``."""
        m = len(self.maxima)
        fraction = sum(1 for t in self.maxima if t >= r) / m
        if fraction >= 1.0:
            return float("inf")  # All cells saturated: r was far too low.
        if fraction == 0.0:
            return 0.0
        return math.log(1.0 - fraction) / math.log(1.0 - 2.0 ** (-r))


class EstimationF0:
    """Median over ``t`` :class:`EstimationRow` repetitions.

    ``estimate`` needs the coarse parameter ``r``; callers either pass it
    explicitly (Theorem 4 style, "given r") or wire in a
    :class:`repro.streaming.flajolet_martin.FlajoletMartinF0` run in
    parallel, as the paper prescribes, via ``estimate_with_rough``.

    Repeated estimates on an unchanged sketch are memoised: every
    mutation (``process``/``process_batch``/``merge``) bumps the
    :attr:`version` counter, and the self-derived coarse level ``r``
    plus the resulting estimate are cached against it through
    :class:`~repro.streaming.base.VersionedCache` -- the same
    version-mismatch discipline the sketch store applies to whole
    entries.
    """

    def __init__(self, universe_bits: int, params: SketchParams,
                 rng: RandomSource,
                 independence: int | None = None,
                 kernel: str | None = None) -> None:
        self.universe_bits = universe_bits
        self.params = params
        if independence is None:
            independence = independence_for_eps(params.eps)
        family = KWiseHashFamily(universe_bits, independence, kernel=kernel)
        self.rows: List[EstimationRow] = [
            EstimationRow([family.sample(rng)
                           for _ in range(params.thresh)])
            for _ in range(params.repetitions)
        ]
        self._version = 0
        self._r_cache = VersionedCache()
        self._estimate_cache = VersionedCache()

    @property
    def version(self) -> int:
        """Mutation counter (bumped by process/process_batch/merge)."""
        return self._version

    def process(self, x: int) -> None:
        for row in self.rows:
            row.process(x)
        self._version += 1

    def process_batch(self, xs: Sequence[int]) -> None:
        """Feed a whole chunk; duplicates are removed once, up front, so
        every polynomial is evaluated only on the chunk's distinct
        elements."""
        if len(xs) == 0:
            return
        if _np is not None and self.universe_bits <= 64:
            xs = _np.unique(_np.asarray(xs, dtype=_np.uint64))
        for row in self.rows:
            row.process_batch(xs)
        self._version += 1

    def merge(self, other: "EstimationF0") -> None:
        """Row-wise entry maxima with a sketch built from the same seeds."""
        if len(other.rows) != len(self.rows):
            raise ValueError("cannot merge sketches of different widths")
        for mine, theirs in zip(self.rows, other.rows):
            mine.merge(theirs)
        self._version += 1

    def estimate_given_r(self, r: int) -> float:
        """Median of row estimates at coarse level ``r``."""
        if not 0 <= r <= self.universe_bits:
            raise InvalidParameterError("r out of range")
        return median([row.estimate(r) for row in self.rows])

    def coarse_r(self) -> int:
        """The sketch's self-derived coarse level (memoised per version).

        The median max-trail-zero level is a Flajolet-Martin-style coarse
        estimate of ``log2 F0``; shifting it up by 3 lands ``2^r`` in
        ``[2 F0, 50 F0]`` whenever the coarse level is within its usual
        factor-5 band.
        """
        def build() -> int:
            level_guesses = [median(row.maxima) for row in self.rows]
            coarse = median(level_guesses)
            return min(int(coarse) + 3, self.universe_bits)

        return self._r_cache.get_or_build(self._version, build)

    def estimate(self) -> float:
        """Estimate without an externally supplied ``r`` (memoised)."""
        return self._estimate_cache.get_or_build(
            self._version, lambda: self.estimate_given_r(self.coarse_r()))

    def space_bits(self) -> int:
        """Seed bits plus one counter per hash function."""
        counter_bits = max(1, self.universe_bits.bit_length())
        return sum(
            sum(h.seed_bits for h in row.hashes)
            + len(row.maxima) * counter_bits
            for row in self.rows)

    def to_bytes(self) -> bytes:
        """Serialize to the versioned wire format (see
        :mod:`repro.store.serialize`)."""
        from repro.store.serialize import dumps
        return dumps(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "EstimationF0":
        """Decode a frame produced by :meth:`to_bytes`."""
        from repro.store.serialize import loads_typed
        return loads_typed(data, cls)
