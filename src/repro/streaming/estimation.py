"""The Estimation (trailing-zero) F0 sketch.

Each repetition ``i`` holds ``Thresh`` independent s-wise hash functions;
entry ``S[i][j]`` is the maximum ``TrailZero(h_ij(x))`` over the stream.
Given a coarse estimate ``r`` with ``2 F0 <= 2^r <= 50 F0`` (from the
FlajoletMartin sketch), the fraction of entries ``>= r`` estimates
``1 - (1 - 2^-r)^F0``, which inverts to the Lemma 3 estimator

    ln(1 - (1/Thresh) * sum_j 1{S[i][j] >= r}) / ln(1 - 2^-r).
"""

from __future__ import annotations

import math
from typing import List

from repro.common.errors import InvalidParameterError
from repro.common.rng import RandomSource
from repro.common.stats import median
from repro.hashing.kwise import KWiseHash, KWiseHashFamily
from repro.streaming.base import SketchParams


def independence_for_eps(eps: float) -> int:
    """The paper's ``s = 10 log(1/eps)`` independence (at least 2)."""
    return max(2, math.ceil(10 * math.log(1.0 / min(eps, 0.99))))


class EstimationRow:
    """One repetition: ``Thresh`` hash functions and their max trail-zeros."""

    __slots__ = ("hashes", "maxima")

    def __init__(self, hashes: List[KWiseHash]) -> None:
        self.hashes = hashes
        self.maxima: List[int] = [0] * len(hashes)

    def process(self, x: int) -> None:
        for j, h in enumerate(self.hashes):
            t = h.trail_zeros(x)
            if t > self.maxima[j]:
                self.maxima[j] = t

    def merge(self, other: "EstimationRow") -> None:
        """Entry-wise max (the distributed Section 4 combine step)."""
        if len(other.maxima) != len(self.maxima):
            raise ValueError("cannot merge rows of different widths")
        self.maxima = [max(a, b) for a, b in zip(self.maxima, other.maxima)]

    def estimate(self, r: int) -> float:
        """The Lemma 3 estimator for a given coarse level ``r``."""
        m = len(self.maxima)
        fraction = sum(1 for t in self.maxima if t >= r) / m
        if fraction >= 1.0:
            return float("inf")  # All cells saturated: r was far too low.
        if fraction == 0.0:
            return 0.0
        return math.log(1.0 - fraction) / math.log(1.0 - 2.0 ** (-r))


class EstimationF0:
    """Median over ``t`` :class:`EstimationRow` repetitions.

    ``estimate`` needs the coarse parameter ``r``; callers either pass it
    explicitly (Theorem 4 style, "given r") or wire in a
    :class:`repro.streaming.flajolet_martin.FlajoletMartinF0` run in
    parallel, as the paper prescribes, via ``estimate_with_rough``.
    """

    def __init__(self, universe_bits: int, params: SketchParams,
                 rng: RandomSource,
                 independence: int | None = None) -> None:
        self.universe_bits = universe_bits
        self.params = params
        if independence is None:
            independence = independence_for_eps(params.eps)
        family = KWiseHashFamily(universe_bits, independence)
        self.rows: List[EstimationRow] = [
            EstimationRow([family.sample(rng)
                           for _ in range(params.thresh)])
            for _ in range(params.repetitions)
        ]

    def process(self, x: int) -> None:
        for row in self.rows:
            row.process(x)

    def estimate_given_r(self, r: int) -> float:
        """Median of row estimates at coarse level ``r``."""
        if not 0 <= r <= self.universe_bits:
            raise InvalidParameterError("r out of range")
        return median([row.estimate(r) for row in self.rows])

    def estimate(self) -> float:
        """Estimate without an externally supplied ``r``.

        Uses the sketch's own entries to pick ``r`` near the paper's promise
        window: the median max-trail-zero level is a Flajolet-Martin-style
        coarse estimate of ``log2 F0``; we shift it up by 3 so that ``2^r``
        lands in ``[2 F0, 50 F0]`` whenever the coarse level is within its
        usual factor-5 band.
        """
        level_guesses = []
        for row in self.rows:
            level_guesses.append(median(sorted(row.maxima)))
        coarse = median(level_guesses)
        r = min(int(coarse) + 3, self.universe_bits)
        return self.estimate_given_r(r)

    def space_bits(self) -> int:
        """Seed bits plus one counter per hash function."""
        counter_bits = max(1, self.universe_bits.bit_length())
        return sum(
            sum(h.seed_bits for h in row.hashes)
            + len(row.maxima) * counter_bits
            for row in self.rows)
