"""Shared sketch parameters and the ComputeF0 driver (Algorithm 1).

The paper fixes ``Thresh = 96 / eps^2`` and ``t = 35 log(1/delta)`` -- the
constants under which Lemmas 1-3 are proved.  Experiments that only need the
*shape* of the guarantee (and would otherwise run 35x-slower for no insight)
may scale the constants down; :class:`SketchParams` makes that knob explicit
instead of burying magic numbers in call sites.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

from repro.common.errors import InvalidParameterError


@dataclass(frozen=True)
class SketchParams:
    """(eps, delta) plus the paper's constants.

    ``thresh_constant`` and ``repetitions_constant`` default to the paper's
    96 and 35; the natural logarithm is used for ``log(1/delta)``.
    """

    eps: float
    delta: float
    thresh_constant: float = 96.0
    repetitions_constant: float = 35.0

    def __post_init__(self) -> None:
        if not 0 < self.eps:
            raise InvalidParameterError("eps must be positive")
        if not 0 < self.delta < 1:
            raise InvalidParameterError("delta must lie in (0, 1)")
        if self.thresh_constant <= 0 or self.repetitions_constant <= 0:
            raise InvalidParameterError("constants must be positive")

    @property
    def thresh(self) -> int:
        """The paper's ``Thresh = ceil(96 / eps^2)`` (at least 1)."""
        return max(1, math.ceil(self.thresh_constant / (self.eps ** 2)))

    @property
    def repetitions(self) -> int:
        """The paper's ``t = ceil(35 ln(1/delta))`` (at least 1)."""
        return max(1, math.ceil(
            self.repetitions_constant * math.log(1.0 / self.delta)))


@runtime_checkable
class F0Estimator(Protocol):
    """The streaming interface shared by every sketch in this package."""

    def process(self, x: int) -> None:
        """Feed one stream item."""
        ...

    def estimate(self) -> float:
        """Current F0 estimate (valid at any point in the stream)."""
        ...


def compute_f0(stream: Iterable[int], estimator: F0Estimator) -> float:
    """The paper's Algorithm 1 driver: process the whole stream, then
    return the estimate."""
    for x in stream:
        estimator.process(x)
    return estimator.estimate()
