"""Shared sketch parameters and the ComputeF0 driver (Algorithm 1).

The paper fixes ``Thresh = 96 / eps^2`` and ``t = 35 log(1/delta)`` -- the
constants under which Lemmas 1-3 are proved.  Experiments that only need the
*shape* of the guarantee (and would otherwise run 35x-slower for no insight)
may scale the constants down; :class:`SketchParams` makes that knob explicit
instead of burying magic numbers in call sites.
"""

from __future__ import annotations

import copy
import itertools
import math
from dataclasses import dataclass
from typing import (
    Iterable,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.common.errors import InvalidParameterError
from repro.parallel.executor import Executor, executor_for
from repro.parallel.streaming import ingest_stream_parallel

#: Default ingestion chunk: large enough to amortise the numpy hash sweep,
#: small enough that per-chunk candidate selection stays cache-resident.
DEFAULT_CHUNK_SIZE = 4096


class VersionedCache:
    """Memoize one derived value against a mutation version counter.

    Every sketch is a pure function of the set of elements it has
    absorbed, so anything derived from it (a coarse level, an estimate,
    a merged view, a wire frame) stays valid until the next mutation.
    Holders bump a version counter on every mutation and route derived
    reads through :meth:`get_or_build`; the cached value is recomputed
    only on version mismatch.  :class:`~repro.store.store.CachedView`
    is the store-level analogue over whole registry entries.

    Not a lock: concurrent readers may race a writer into one redundant
    rebuild (both build from the same version, so both results are
    identical); callers needing stronger guarantees hold their own lock
    around :meth:`get_or_build`.
    """

    __slots__ = ("_version", "_value")

    def __init__(self) -> None:
        self._version: object = None  # None = never built.
        self._value: object = None

    def get_or_build(self, version, build):
        """The cached value at ``version``, rebuilding on mismatch."""
        if self._version != version or self._version is None:
            self._value = build()
            self._version = version
        return self._value

    def invalidate(self) -> None:
        """Drop the cached value (the next read rebuilds)."""
        self._version = None
        self._value = None


@dataclass(frozen=True)
class SketchParams:
    """(eps, delta) plus the paper's constants.

    ``thresh_constant`` and ``repetitions_constant`` default to the paper's
    96 and 35; the natural logarithm is used for ``log(1/delta)``.
    """

    eps: float
    delta: float
    thresh_constant: float = 96.0
    repetitions_constant: float = 35.0

    def __post_init__(self) -> None:
        if not 0 < self.eps:
            raise InvalidParameterError("eps must be positive")
        if not 0 < self.delta < 1:
            raise InvalidParameterError("delta must lie in (0, 1)")
        if self.thresh_constant <= 0 or self.repetitions_constant <= 0:
            raise InvalidParameterError("constants must be positive")

    @property
    def thresh(self) -> int:
        """The paper's ``Thresh = ceil(96 / eps^2)`` (at least 1)."""
        return max(1, math.ceil(self.thresh_constant / (self.eps ** 2)))

    @property
    def repetitions(self) -> int:
        """The paper's ``t = ceil(35 ln(1/delta))`` (at least 1)."""
        return max(1, math.ceil(
            self.repetitions_constant * math.log(1.0 / self.delta)))


@runtime_checkable
class F0Estimator(Protocol):
    """The minimal streaming interface (scalar ingestion only)."""

    def process(self, x: int) -> None:
        """Feed one stream item."""
        ...

    def estimate(self) -> float:
        """Current F0 estimate (valid at any point in the stream)."""
        ...


@runtime_checkable
class F0Sketch(Protocol):
    """The full mergeable-sketch contract every F0 sketch implements.

    The batch and merge contracts are *exact*: for a fixed hash seed,
    any split of a stream into ``process`` calls, ``process_batch``
    chunks (in any order, with any duplication across chunks), or
    shard-and-``merge`` runs must yield bit-identical estimates -- each
    sketch is a function of the *set* of distinct elements only.  That
    set-semantics invariant is what Section 4's distributed protocols
    exploit, and the property tests in ``tests/test_batch_streaming.py``
    pin it down for every implementation.
    """

    def process(self, x: int) -> None:
        """Feed one stream item."""
        ...

    def process_batch(self, xs: Sequence[int]) -> None:
        """Feed a chunk of stream items (one vectorised hash sweep)."""
        ...

    def merge(self, other: "F0Sketch") -> None:
        """Fold another sketch built with the *same* hash seeds (from a
        disjoint or overlapping sub-stream) into this one."""
        ...

    def estimate(self) -> float:
        """Current F0 estimate (valid at any point in the stream)."""
        ...

    def space_bits(self) -> int:
        """Transmittable footprint (distributed accounting)."""
        ...

    def to_bytes(self) -> bytes:
        """Serialize to the versioned wire format of
        :mod:`repro.store.serialize` (``loads`` round-trips to
        bit-identical ``estimate``/``merge`` behaviour)."""
        ...


def chunked(stream: Iterable[int],
            chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[Sequence[int]]:
    """Yield the stream in chunks of at most ``chunk_size`` items.

    Sequences (lists, tuples, numpy arrays) are sliced without copying
    the whole stream again; arbitrary iterables are buffered lazily, so
    generator-backed streams are never fully materialised.
    """
    if chunk_size < 1:
        raise InvalidParameterError("chunk_size must be >= 1")
    try:
        length = len(stream)  # type: ignore[arg-type]
        stream[0:0]  # type: ignore[index]  # Sliceable? (sets are not)
    except TypeError:
        it = iter(stream)
        while True:
            chunk = list(itertools.islice(it, chunk_size))
            if not chunk:
                return
            yield chunk
    else:
        for i in range(0, length, chunk_size):
            yield stream[i:i + chunk_size]  # type: ignore[index]


def compute_f0(stream: Iterable[int], estimator: F0Estimator,
               chunk_size: int = DEFAULT_CHUNK_SIZE,
               workers: int = 1,
               executor: Optional[Executor] = None,
               wire: str = "pickle") -> float:
    """The paper's Algorithm 1 driver, chunked.

    The stream (any iterable, including generators) is cut into chunks
    and fed through ``process_batch`` when the estimator has a batch
    path; estimators without one receive the items one at a time.  Both
    routes produce bit-identical estimates -- the batch paths are exact.

    ``workers=k`` (or an explicit ``executor``) scatters the chunks over
    a process pool: ``k`` replicas of the estimator (same hash seeds)
    each ingest a round-robin chunk partition in their own worker, and
    the replicas are merged back into ``estimator``.  Set semantics make
    the result bit-identical to ``workers=1``.  The parallel path needs
    the full :class:`F0Sketch` contract (``process_batch`` + ``merge``);
    estimators without it fall back to serial ingestion.

    Args:
        stream: the items to count distinct elements over.
        estimator: any :class:`F0Estimator`; the parallel path
            additionally needs ``process_batch`` and ``merge``.
        chunk_size: items per ingestion chunk (must be >= 1).
        workers: process-pool width (``0`` = all cores, ``1`` = serial).
        executor: explicit executor overriding ``workers`` (the caller
            keeps ownership and must close it).
        wire: replica transport under a pool -- ``"pickle"`` (default)
            or ``"store"`` for the versioned binary frames of
            :mod:`repro.store.serialize`.

    Returns:
        The estimator's estimate after the whole stream is ingested.

    Raises:
        InvalidParameterError: ``chunk_size`` < 1 or ``workers`` < 0.
    """
    with executor_for(workers, executor) as ex:
        if (not ex.is_serial and hasattr(estimator, "merge")
                and hasattr(estimator, "process_batch")):
            replicas = [copy.deepcopy(estimator)
                        for _ in range(ex.workers)]
            replicas = ingest_stream_parallel(
                ex, replicas, chunked(stream, chunk_size), wire=wire)
            for replica in replicas:
                estimator.merge(replica)
            return estimator.estimate()
    process_batch = getattr(estimator, "process_batch", None)
    if process_batch is None:
        for x in stream:
            estimator.process(x)
    else:
        for chunk in chunked(stream, chunk_size):
            process_batch(chunk)
    return estimator.estimate()
