"""The Minimum (k-minimum-values) F0 sketch.

Each repetition hashes into ``3n`` bits (collision-free whp) and keeps the
``Thresh`` lexicographically smallest *distinct* hash values.  When fewer
than ``Thresh`` values have been seen the sketch holds every distinct value,
so the count is exact; once full, the estimate is
``Thresh * 2^m / max(sketch)`` (Lemma 2).

The under-full case follows Bar-Yossef et al.'s original algorithm (output
the exact count); the paper's condensed formula ``Thresh * 2^m / max`` is
only meaningful for full sketches and degenerates below ``Thresh`` -- see
EXPERIMENTS.md, deviations table.
"""

from __future__ import annotations

import heapq
from typing import List, Set

from repro.common.rng import RandomSource
from repro.common.stats import median
from repro.hashing.base import LinearHash
from repro.hashing.toeplitz import ToeplitzHashFamily
from repro.streaming.base import SketchParams


class MinimumRow:
    """One repetition: the ``Thresh`` smallest distinct hash values.

    Kept as a max-heap of negated values plus a membership set, giving
    O(log Thresh) updates.
    """

    __slots__ = ("h", "thresh", "_neg_heap", "_members")

    def __init__(self, h: LinearHash, thresh: int) -> None:
        self.h = h
        self.thresh = thresh
        self._neg_heap: List[int] = []  # Negated values: root is the max.
        self._members: Set[int] = set()

    def process(self, x: int) -> None:
        self.insert_value(self.h.value(x))

    def insert_value(self, value: int) -> None:
        """Insert an already-hashed value (used by the DNF-stream merge and
        the distributed coordinator)."""
        if value in self._members:
            return
        if len(self._neg_heap) < self.thresh:
            heapq.heappush(self._neg_heap, -value)
            self._members.add(value)
            return
        current_max = -self._neg_heap[0]
        if value < current_max:
            heapq.heapreplace(self._neg_heap, -value)
            self._members.discard(current_max)
            self._members.add(value)

    def merge(self, other: "MinimumRow") -> None:
        """Union the value sets, keep the ``Thresh`` smallest."""
        for value in other.values():
            self.insert_value(value)

    def values(self) -> List[int]:
        """The kept hash values in ascending order."""
        return sorted(-v for v in self._neg_heap)

    @property
    def is_full(self) -> bool:
        return len(self._neg_heap) >= self.thresh

    def estimate(self) -> float:
        """Exact count while under-full; ``Thresh * 2^m / max`` once full."""
        if not self._neg_heap:
            return 0.0
        if not self.is_full:
            return float(len(self._neg_heap))
        largest = -self._neg_heap[0]
        if largest == 0:
            return float(len(self._neg_heap))
        return self.thresh * float(1 << self.h.out_bits) / largest


class MinimumF0:
    """Median over ``t`` independent :class:`MinimumRow` repetitions.

    Hash range is ``3n`` bits per the paper (Algorithm 2) so that distinct
    elements receive distinct values with probability ``1 - 2^-n``.
    """

    def __init__(self, universe_bits: int, params: SketchParams,
                 rng: RandomSource) -> None:
        self.universe_bits = universe_bits
        self.params = params
        family = ToeplitzHashFamily(universe_bits, 3 * universe_bits)
        self.rows: List[MinimumRow] = [
            MinimumRow(family.sample(rng), params.thresh)
            for _ in range(params.repetitions)
        ]

    def process(self, x: int) -> None:
        for row in self.rows:
            row.process(x)

    def estimate(self) -> float:
        return median([row.estimate() for row in self.rows])

    def space_bits(self) -> int:
        """Seed bits plus stored hash values, per row."""
        return sum(row.h.seed_bits
                   + len(row.values()) * row.h.out_bits
                   for row in self.rows)
