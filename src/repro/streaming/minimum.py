"""The Minimum (k-minimum-values) F0 sketch.

Each repetition hashes into ``3n`` bits (collision-free whp) and keeps the
``Thresh`` lexicographically smallest *distinct* hash values.  When fewer
than ``Thresh`` values have been seen the sketch holds every distinct value,
so the count is exact; once full, the estimate is
``Thresh * 2^m / max(sketch)`` (Lemma 2).

The under-full case follows Bar-Yossef et al.'s original algorithm (output
the exact count); the paper's condensed formula ``Thresh * 2^m / max`` is
only meaningful for full sketches and degenerates below ``Thresh`` -- see
EXPERIMENTS.md, deviations table.

Batch ingestion: a chunk is hashed in one vectorised GF(2) sweep
(bit-packed for ``out_bits <= 64``, multi-word otherwise -- the ``3n``-bit
range overflows a machine word beyond 21-bit universes), deduped and
sorted in numpy, and only the chunk's ``Thresh`` smallest distinct values
survive as candidates -- the Thresh smallest of the union are necessarily
among (current sketch) union (Thresh smallest of the chunk), so the
Python-level work per chunk is O(Thresh), not O(chunk).
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Sequence, Set

from repro.common.rng import RandomSource
from repro.common.stats import median
from repro.hashing.base import LinearHash
from repro.hashing.toeplitz import ToeplitzHashFamily
from repro.streaming.base import SketchParams

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


class MinimumRow:
    """One repetition: the ``Thresh`` smallest distinct hash values.

    Kept as a max-heap of negated values plus a membership set, giving
    O(log Thresh) scalar updates and a single rebuild per bulk insert.
    """

    __slots__ = ("h", "thresh", "_neg_heap", "_members")

    def __init__(self, h: LinearHash, thresh: int) -> None:
        self.h = h
        self.thresh = thresh
        self._neg_heap: List[int] = []  # Negated values: root is the max.
        self._members: Set[int] = set()

    def process(self, x: int) -> None:
        self.insert_value(self.h.value(x))

    def process_batch(self, xs: Sequence[int]) -> None:
        """One vectorised hash sweep over a chunk, then a bulk insert of
        the chunk's ``Thresh`` smallest distinct values."""
        if len(xs) == 0:
            return
        h = self.h
        if _np is None or h.in_bits > 64:
            for x in xs:
                self.process(int(x))
            return
        cutoff = -self._neg_heap[0] if self.is_full else None
        if h.out_bits <= 64:
            values = _np.unique(_np.asarray(h.values_batch(xs),
                                            dtype=_np.uint64))
            if cutoff is not None:
                values = values[values < _np.uint64(cutoff)]
            candidates = [int(v) for v in values[:self.thresh]]
        else:
            words = h.values_batch_words(xs)
            if words is None:  # pragma: no cover - guarded above
                for x in xs:
                    self.process(int(x))
                return
            # Lexicographic row order == numeric value order (MSB word
            # first), so the first Thresh unique rows are the smallest.
            words = _np.unique(words, axis=0)[:self.thresh]
            candidates = [h.words_to_int(row) for row in words]
        self.insert_values(candidates)

    def insert_value(self, value: int) -> None:
        """Insert one already-hashed value."""
        if value in self._members:
            return
        if len(self._neg_heap) < self.thresh:
            heapq.heappush(self._neg_heap, -value)
            self._members.add(value)
            return
        current_max = -self._neg_heap[0]
        if value < current_max:
            heapq.heapreplace(self._neg_heap, -value)
            self._members.discard(current_max)
            self._members.add(value)

    def insert_values(self, values: Iterable[int]) -> None:
        """Bulk insert of already-hashed values (the DNF-stream merge and
        the distributed coordinator feed through here).

        Dedupes the batch against the membership set, drops values that
        cannot enter a full sketch, and partial-selects the ``Thresh``
        smallest of the union in one heap rebuild instead of O(batch)
        heap-churning ``insert_value`` calls.
        """
        cutoff = -self._neg_heap[0] if self.is_full else None
        fresh = {int(v) for v in values}
        fresh -= self._members
        if cutoff is not None:
            fresh = {v for v in fresh if v < cutoff}
        if not fresh:
            return
        if len(self._members) + len(fresh) <= self.thresh:
            for v in fresh:
                heapq.heappush(self._neg_heap, -v)
            self._members |= fresh
            return
        keep = heapq.nsmallest(self.thresh, self._members | fresh)
        self._members = set(keep)
        self._neg_heap = [-v for v in keep]
        heapq.heapify(self._neg_heap)

    def merge(self, other: "MinimumRow") -> None:
        """Union the value sets, keep the ``Thresh`` smallest."""
        if other.h is not self.h and (other.h.rows != self.h.rows
                                      or other.h.offsets != self.h.offsets):
            raise ValueError("cannot merge rows with different hashes")
        self.insert_values(other._members)

    def values(self) -> List[int]:
        """The kept hash values in ascending order."""
        return sorted(-v for v in self._neg_heap)

    @property
    def is_full(self) -> bool:
        return len(self._neg_heap) >= self.thresh

    def estimate(self) -> float:
        """Exact count while under-full; ``Thresh * 2^m / max`` once full."""
        if not self._neg_heap:
            return 0.0
        if not self.is_full:
            return float(len(self._neg_heap))
        largest = -self._neg_heap[0]
        if largest == 0:
            return float(len(self._neg_heap))
        return self.thresh * float(1 << self.h.out_bits) / largest


class MinimumF0:
    """Median over ``t`` independent :class:`MinimumRow` repetitions.

    Hash range is ``3n`` bits per the paper (Algorithm 2) so that distinct
    elements receive distinct values with probability ``1 - 2^-n``.
    """

    def __init__(self, universe_bits: int, params: SketchParams,
                 rng: RandomSource, kernel: str | None = None) -> None:
        self.universe_bits = universe_bits
        self.params = params
        family = ToeplitzHashFamily(universe_bits, 3 * universe_bits,
                                    kernel=kernel)
        self.rows: List[MinimumRow] = [
            MinimumRow(family.sample(rng), params.thresh)
            for _ in range(params.repetitions)
        ]

    def process(self, x: int) -> None:
        for row in self.rows:
            row.process(x)

    def process_batch(self, xs: Sequence[int]) -> None:
        """Feed a whole chunk; duplicates are removed once, up front, so
        every row hashes only the chunk's distinct elements."""
        if len(xs) == 0:
            return
        if _np is not None and self.universe_bits <= 64:
            xs = _np.unique(_np.asarray(xs, dtype=_np.uint64))
        for row in self.rows:
            row.process_batch(xs)

    def merge(self, other: "MinimumF0") -> None:
        """Row-wise union with a sketch built from the same seeds."""
        if len(other.rows) != len(self.rows):
            raise ValueError("cannot merge sketches of different widths")
        for mine, theirs in zip(self.rows, other.rows):
            mine.merge(theirs)

    def estimate(self) -> float:
        return median([row.estimate() for row in self.rows])

    def space_bits(self) -> int:
        """Seed bits plus stored hash values, per row."""
        return sum(row.h.seed_bits
                   + len(row.values()) * row.h.out_bits
                   for row in self.rows)

    def to_bytes(self) -> bytes:
        """Serialize to the versioned wire format (see
        :mod:`repro.store.serialize`)."""
        from repro.store.serialize import dumps
        return dumps(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MinimumF0":
        """Decode a frame produced by :meth:`to_bytes`."""
        from repro.store.serialize import loads_typed
        return loads_typed(data, cls)
