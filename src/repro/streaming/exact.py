"""Exact F0 by keeping the distinct set -- the test-suite ground truth."""

from __future__ import annotations


class ExactF0:
    """Set-based exact distinct counting (O(F0) space, no error)."""

    def __init__(self) -> None:
        self._seen: set = set()

    def process(self, x: int) -> None:
        self._seen.add(x)

    def estimate(self) -> float:
        return float(len(self._seen))

    def distinct(self) -> int:
        """The exact count as an integer."""
        return len(self._seen)
