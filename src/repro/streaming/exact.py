"""Exact F0 by keeping the distinct set -- the test-suite ground truth.

Implements the full :class:`~repro.streaming.base.F0Sketch` contract so
the exact counter can stand in anywhere a sketch can (chunked drivers,
sharded ingestion, merge-based combines) while staying bit-exact.
"""

from __future__ import annotations

from typing import Sequence


class ExactF0:
    """Set-based exact distinct counting (O(F0) space, no error)."""

    def __init__(self) -> None:
        self._seen: set = set()

    def process(self, x: int) -> None:
        self._seen.add(x)

    def process_batch(self, xs: Sequence[int]) -> None:
        self._seen.update(int(x) for x in xs)

    def merge(self, other: "ExactF0") -> None:
        """Set union -- the trivially exact combine."""
        self._seen |= other._seen

    def estimate(self) -> float:
        return float(len(self._seen))

    def distinct(self) -> int:
        """The exact count as an integer."""
        return len(self._seen)

    def space_bits(self) -> int:
        """Bits held: the stored elements themselves (no seeds)."""
        return sum(max(1, x.bit_length()) for x in self._seen)

    def to_bytes(self) -> bytes:
        """Serialize to the versioned wire format (see
        :mod:`repro.store.serialize`)."""
        from repro.store.serialize import dumps
        return dumps(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ExactF0":
        """Decode a frame produced by :meth:`to_bytes`."""
        from repro.store.serialize import loads_typed
        return loads_typed(data, cls)
