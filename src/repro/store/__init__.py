"""Durable storage for F0 sketches.

The paper's whole trade is that an F0 sketch is a tiny, mergeable
summary of a stream -- exactly the object worth keeping *after* the
process that built it exits.  This package supplies the persistence
layer the streaming side was missing:

* :mod:`repro.store.serialize` -- a versioned binary wire format with
  ``dumps`` / ``loads`` for every :class:`~repro.streaming.base.F0Sketch`
  implementation *and* the hash functions they embed, round-tripping to
  bit-identical ``estimate()`` / ``merge()`` behaviour;
* :mod:`repro.store.store` -- :class:`SketchStore`, a thread-safe named
  registry with merge-on-put (the coordinator combine as a storage
  primitive), TTL eviction, and atomic snapshot-to-disk / restore;
* :mod:`repro.store.factory` -- :func:`build_sketch`, the one place a
  ``(kind, universe_bits, params, seed)`` request becomes a sketch (the
  CLI ``f0`` verb and the service's create endpoint share it).

The HTTP layer in :mod:`repro.service` is a thin shell over these
pieces; everything here also works embedded, with no server at all.
"""

from repro.store.serialize import (
    FORMAT_VERSION,
    MAGIC,
    StoreFormatError,
    dumps,
    loads,
    loads_sketch,
    loads_typed,
    serialized_size,
)
from repro.store.deltalog import DeltaLog, SeqCounter
from repro.store.factory import SKETCH_KINDS, build_sketch
from repro.store.store import (
    VIEW_METRICS,
    CachedView,
    SketchConflictError,
    SketchStore,
    StoredSketch,
    ViewMetrics,
)

__all__ = [
    "CachedView",
    "DeltaLog",
    "FORMAT_VERSION",
    "MAGIC",
    "SKETCH_KINDS",
    "SeqCounter",
    "SketchConflictError",
    "SketchStore",
    "StoreFormatError",
    "StoredSketch",
    "VIEW_METRICS",
    "ViewMetrics",
    "build_sketch",
    "dumps",
    "loads",
    "loads_sketch",
    "loads_typed",
    "serialized_size",
]
