"""One constructor for every named sketch kind.

The CLI's ``f0`` verb, the service's create endpoint and the quickstart
examples all turn a ``(kind, universe_bits, params, seed)`` request into
a sketch; this module is the single copy of that mapping, so the set of
kinds a client may name and the set the store can build never drift
apart.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.common.errors import InvalidParameterError
from repro.streaming.base import F0Sketch, SketchParams
from repro.streaming.bucketing import BucketingF0
from repro.streaming.estimation import EstimationF0
from repro.streaming.exact import ExactF0
from repro.streaming.flajolet_martin import FlajoletMartinF0
from repro.streaming.minimum import MinimumF0
from repro.streaming.sharded import ShardedF0
from repro.streaming.windowed import WindowedF0

#: The sketch kinds a client may name (CLI ``--sketch``, service
#: ``kind`` field).  Order is the display order of help strings.
SKETCH_KINDS = ("minimum", "estimation", "bucketing", "fm", "exact")

#: Default guarantee knobs for service-built sketches; matches the CLI.
DEFAULT_PARAMS = SketchParams(eps=0.8, delta=0.2)


#: Ring size used when a window span is requested without an explicit
#: bucket count (CLI ``--window`` without ``--buckets``, service
#: ``window`` without ``buckets``).
DEFAULT_WINDOW_BUCKETS = 8


def build_sketch(kind: str, universe_bits: int,
                 params: Optional[SketchParams] = None,
                 seed: int = 0, shards: int = 1,
                 window: Optional[float] = None,
                 buckets: Optional[int] = None) -> F0Sketch:
    """Build a fresh (empty) sketch of a named kind.

    Args:
        kind: one of :data:`SKETCH_KINDS`.
        universe_bits: width of the stream's element universe.  Ignored
            by ``"exact"``.
        params: accuracy parameters; :data:`DEFAULT_PARAMS` when omitted.
        seed: RNG seed for hash sampling.  Two calls with equal
            arguments build sketches with identical hash seeds, so their
            outputs merge cleanly -- this is how service clients
            construct shard replicas compatible with a server-side
            prototype.
        shards: wrap the sketch in a :class:`ShardedF0` with this many
            replicas when > 1.
        window: wrap the sketch in a
            :class:`~repro.streaming.windowed.WindowedF0` spanning this
            much logical time (sliding-window distinct counts; rotated
            by explicit ``advance`` calls).
        buckets: ring size for ``window``
            (:data:`DEFAULT_WINDOW_BUCKETS` when omitted; requires
            ``window``).

    Window wrapping happens *inside* shard wrapping: with both set,
    each of the ``shards`` replicas is a full windowed ring sharing the
    same seeds, so rotation and merging stay aligned across shards.

    Returns:
        An empty sketch implementing the full
        :class:`~repro.streaming.base.F0Sketch` contract.

    Raises:
        InvalidParameterError: unknown ``kind``, a non-positive
            ``universe_bits`` for a hashed kind, or ``buckets`` without
            ``window``.
    """
    if kind not in SKETCH_KINDS:
        raise InvalidParameterError(
            f"unknown sketch kind {kind!r}; expected one of "
            f"{', '.join(SKETCH_KINDS)}")
    if params is None:
        params = DEFAULT_PARAMS
    rng = random.Random(seed)
    if kind == "exact":
        sketch: F0Sketch = ExactF0()
    else:
        if universe_bits < 1:
            raise InvalidParameterError(
                "universe_bits must be >= 1 for hashed sketches")
        if kind == "fm":
            sketch = FlajoletMartinF0(universe_bits, rng,
                                      repetitions=params.repetitions)
        else:
            cls = {"minimum": MinimumF0, "estimation": EstimationF0,
                   "bucketing": BucketingF0}[kind]
            sketch = cls(universe_bits, params, rng)
    if window is not None:
        sketch = WindowedF0(sketch, window,
                            buckets=(buckets if buckets is not None
                                     else DEFAULT_WINDOW_BUCKETS))
    elif buckets is not None:
        raise InvalidParameterError(
            "buckets only applies to windowed sketches; set window too")
    if shards > 1:
        sketch = ShardedF0(sketch, shards)
    return sketch
