"""An append-only frame-delta log for shared-nothing store replicas.

The multi-process front end (:mod:`repro.service.multiproc`) runs one
:class:`~repro.store.store.SketchStore` per worker process.  That only
works because the sketches are *mergeable*: any worker's view folded
into any other's converges to the union, bit-identically, regardless of
order (merge is associative, commutative and idempotent).  This module
is the channel the workers converge through.

Each writer owns one append-only file (``delta-<id>.log``) in a shared
directory and appends a *record* per published change; every reader
keeps a per-file offset and, on :meth:`DeltaLog.poll`, picks up exactly
the records appended since its last look.  Appends are single ``write``
syscalls of one fully-built record, so readers never observe a torn
record body -- at worst a truncated *tail*, which the parser leaves in
place for the next poll (the offset only ever advances past complete
records).

Record kinds
------------

``MERGE``
    The writer's full local state for one name, as a wire frame of
    :mod:`repro.store.serialize`.  Folding it is ``put(merge=True)``:
    idempotent, so re-reading a log or merging a frame that is already
    a subset is harmless.
``REPLACE``
    A create-or-replace (the PUT upload endpoint, restore).  Folding it
    overwrites the local entry and *barriers* the name: any MERGE
    record with a smaller global sequence number carries pre-replace
    state and is skipped.
``DELETE``
    A tombstone; also barriers the name, so stale merges cannot
    resurrect deleted content.

Records carry a global sequence number drawn from one shared counter
(a fork-inherited ``multiprocessing.Value`` across processes, a plain
lock-guarded int within one), so every reader applies REPLACE/DELETE
barriers in the same total order and replicas converge to the same
registry whatever the interleaving.
"""

from __future__ import annotations

import os
import struct
import threading
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.common.errors import ReproError
from repro.store.serialize import StoreFormatError, loads
from repro.store.store import SketchNotFoundError, SketchStore

#: Record kinds (see module doc).
MERGE, REPLACE, DELETE = 0, 1, 2

#: Fixed-size record header: kind, global seq, name length, frame
#: length, ttl (NaN = no expiry).  Little-endian, no padding.
_HEADER = struct.Struct("<BQHId")

_NAN = float("nan")


class DeltaRecord(NamedTuple):
    """One parsed log record."""

    seq: int
    kind: int
    name: str
    frame: bytes
    ttl: Optional[float]


class SeqCounter:
    """A lock-guarded in-process sequence counter.

    The API (``get_lock()`` + ``.value``) deliberately matches
    ``multiprocessing.Value("Q")`` so :class:`DeltaLog` takes either: the
    multi-process front end passes a fork-inherited shared value, unit
    tests and single-process embedders get this local stand-in.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def get_lock(self) -> threading.Lock:
        """The lock guarding ``value``."""
        return self._lock


class DeltaLog:
    """One replica's handle on a shared delta-log directory.

    Args:
        directory: the shared log directory (must exist).
        worker_id: this replica's writer slot; ``None`` makes the
            handle read-only (the parent process folding all workers).
        counter: the shared sequence counter (``multiprocessing.Value``
            or :class:`SeqCounter`); a fresh local one by default.
        peers: when given, poll exactly the writer slots
            ``0..peers-1`` instead of listing the directory -- the
            fixed-fleet fast path (a warm poll is one ``stat`` per
            peer file, no allocation beyond the result list).
    """

    def __init__(self, directory: str, worker_id: Optional[int] = None,
                 counter=None, peers: Optional[int] = None) -> None:
        self.directory = directory
        self.worker_id = worker_id
        self._counter = counter if counter is not None else SeqCounter()
        self._peers = peers
        self._append_fd: Optional[int] = None
        self._offsets: Dict[str, int] = {}
        self._barrier: Dict[str, int] = {}
        #: Fold bookkeeping: records applied / skipped (stale or bad).
        self.applied = 0
        self.skipped = 0

    # -- paths -------------------------------------------------------------

    @staticmethod
    def filename(worker_id: int) -> str:
        """The log file name for one writer slot."""
        return f"delta-{worker_id:04d}.log"

    def _path(self, worker_id: int) -> str:
        return os.path.join(self.directory, self.filename(worker_id))

    def _peer_files(self) -> List[str]:
        if self._peers is not None:
            return [self.filename(i) for i in range(self._peers)]
        return sorted(f for f in os.listdir(self.directory)
                      if f.startswith("delta-") and f.endswith(".log"))

    # -- writing -----------------------------------------------------------

    def next_seq(self) -> int:
        """Draw the next global sequence number."""
        with self._counter.get_lock():
            seq = self._counter.value
            self._counter.value = seq + 1
        return seq

    def append(self, kind: int, name: str, frame: bytes = b"",
               ttl: Optional[float] = None) -> int:
        """Append one record; returns its global sequence number.

        The record is built fully in memory and written with a single
        ``os.write`` on an ``O_APPEND`` descriptor, so concurrent
        writers to *different* files and readers of this one never see
        interleaved or torn record bodies.

        Raises:
            ReproError: this handle is read-only (no ``worker_id``).
        """
        if self.worker_id is None:
            raise ReproError("read-only DeltaLog handle cannot append")
        if self._append_fd is None:
            self._append_fd = os.open(
                self._path(self.worker_id),
                os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        encoded = name.encode("utf-8")
        seq = self.next_seq()
        record = _HEADER.pack(kind, seq, len(encoded), len(frame),
                              _NAN if ttl is None else ttl) \
            + encoded + frame
        os.write(self._append_fd, record)
        return seq

    def note_barrier(self, name: str, seq: int) -> None:
        """Record a locally-originated REPLACE/DELETE barrier, so this
        replica skips peers' stale MERGE records exactly like replicas
        that learned of the barrier by folding it."""
        if seq > self._barrier.get(name, -1):
            self._barrier[name] = seq

    # -- reading -----------------------------------------------------------

    def poll(self, include_own: bool = False) -> List[DeltaRecord]:
        """Records appended since the last poll, sorted by global seq.

        Writers normally exclude their own file (their local store is
        already ahead of it); pass ``include_own=True`` to replay
        everything -- idempotent merge semantics make that safe, which
        is how a fresh process recovers a fleet's state from the logs
        alone.  A read-only handle always reads every file.
        """
        own = None if include_own or self.worker_id is None \
            else self.filename(self.worker_id)
        records: List[DeltaRecord] = []
        for fname in self._peer_files():
            if fname == own:
                continue
            path = os.path.join(self.directory, fname)
            offset = self._offsets.get(fname, 0)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue  # Not created yet (worker has published nothing).
            if size <= offset:
                continue
            with open(path, "rb") as f:
                f.seek(offset)
                data = f.read(size - offset)
            consumed = self._parse(data, records)
            self._offsets[fname] = offset + consumed
        records.sort(key=lambda r: r.seq)
        return records

    @staticmethod
    def _parse(data: bytes, out: List[DeltaRecord]) -> int:
        """Parse complete records from ``data`` into ``out``; returns the
        bytes consumed (a truncated tail is left for the next poll)."""
        pos = 0
        header = _HEADER.size
        while pos + header <= len(data):
            kind, seq, name_len, frame_len, ttl = \
                _HEADER.unpack_from(data, pos)
            end = pos + header + name_len + frame_len
            if end > len(data):
                break
            name = data[pos + header:pos + header + name_len] \
                .decode("utf-8", "replace")
            frame = data[pos + header + name_len:end]
            out.append(DeltaRecord(
                seq, kind, name, frame, None if ttl != ttl else ttl))
            pos = end
        return pos

    # -- folding -----------------------------------------------------------

    def fold_into(self, store: SketchStore,
                  include_own: bool = False) -> Tuple[int, int]:
        """Apply every new record to ``store``; returns
        ``(applied, skipped)`` counts for this call.

        Records apply in global-sequence order.  A MERGE older than the
        newest REPLACE/DELETE barrier seen for its name is *stale*
        (pre-replace state) and skipped; so is any record whose frame
        fails to decode or merge -- one bad record must never wedge the
        reconciliation path, so failures count rather than raise.
        """
        applied = skipped = 0
        for record in self.poll(include_own=include_own):
            barrier = self._barrier.get(record.name, -1)
            try:
                if record.kind == DELETE:
                    self.note_barrier(record.name, record.seq)
                    try:
                        store.delete(record.name)
                    except SketchNotFoundError:
                        pass
                elif record.kind == REPLACE:
                    self.note_barrier(record.name, record.seq)
                    store.put(record.name, loads(record.frame),
                              ttl=record.ttl)
                elif record.seq > barrier:  # MERGE, not stale.
                    store.put(record.name, loads(record.frame),
                              ttl=record.ttl, merge=True)
                else:
                    skipped += 1
                    continue
                applied += 1
            except (ReproError, StoreFormatError, ValueError):
                skipped += 1
        self.applied += applied
        self.skipped += skipped
        return applied, skipped

    def close(self) -> None:
        """Release the append descriptor (reader state is kept)."""
        if self._append_fd is not None:
            os.close(self._append_fd)
            self._append_fd = None


__all__ = [
    "DELETE",
    "DeltaLog",
    "DeltaRecord",
    "MERGE",
    "REPLACE",
    "SeqCounter",
]
