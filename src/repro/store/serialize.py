"""The versioned binary wire format for F0 sketches and hash functions.

Every :class:`~repro.streaming.base.F0Sketch` implementation (Minimum,
Estimation, Bucketing, FlajoletMartin, Exact, Sharded, Windowed) and the hash
functions they embed (:class:`~repro.hashing.base.LinearHash`,
:class:`~repro.hashing.kwise.KWiseHash`) serialize through one pair of
functions, :func:`dumps` / :func:`loads`.

Design rules:

* **Compact little-endian framing.**  A 4-byte magic (``RF0S``), a u16
  format version, a u8 kind tag, then a kind-specific payload built from
  fixed-width little-endian scalars and length-prefixed big integers
  (hash rows and hash values are ``3n``-bit quantities that overflow a
  machine word beyond 21-bit universes, so every potentially wide int is
  arbitrary-precision on the wire).
* **Bit-identical round trips.**  ``loads(dumps(sk))`` reconstructs a
  sketch whose ``estimate()`` and ``merge()`` behaviour is bit-identical
  to the original: hash seeds travel exactly (rows, offsets, GF(2^n)
  coefficients), floats travel as IEEE-754 doubles (Python's float),
  and the mutable state that estimates are a function of (kept minimum
  values, max-trail-zero vectors, bucket contents with cached cell
  levels) travels in full.  Scratch state (numpy layout caches,
  memoisation counters) is rebuilt lazily after load, like the pickle
  path.
* **Fail loudly, never garbage.**  A corrupted magic, an unknown format
  version, an unknown kind tag, a truncated payload or trailing bytes
  all raise :class:`StoreFormatError` -- a decoded sketch is either
  faithful or an exception, never a silently wrong estimate.

The format is the service's interchange unit: shard workers upload
serialized sketches, :class:`~repro.store.store.SketchStore` snapshots
concatenate them, and :mod:`repro.parallel.streaming` can ship them in
place of pickles (``wire="store"``).
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Tuple, Type

from repro.common.errors import ReproError
from repro.gf2.gf2n import GF2n
from repro.hashing.base import LinearHash
from repro.hashing.kwise import KWiseHash
from repro.streaming.base import SketchParams, VersionedCache
from repro.streaming.bucketing import BucketingF0, BucketingRow
from repro.streaming.estimation import EstimationF0, EstimationRow
from repro.streaming.exact import ExactF0
from repro.streaming.flajolet_martin import FlajoletMartinF0
from repro.streaming.minimum import MinimumF0, MinimumRow
from repro.streaming.sharded import ShardedF0
from repro.streaming.windowed import WindowedF0

#: First four bytes of every serialized object.
MAGIC = b"RF0S"

#: Current wire-format version; bumped on any incompatible layout change.
FORMAT_VERSION = 1


class StoreFormatError(ReproError):
    """A serialized payload is malformed, truncated, or from an
    incompatible format version."""


# --------------------------------------------------------------------------
# Kind tags (u8).  Hash functions share the sketch namespace so that one
# ``loads`` entry point can decode anything ``dumps`` produced.

KIND_LINEAR_HASH = 0x01
KIND_KWISE_HASH = 0x02
KIND_MINIMUM = 0x10
KIND_ESTIMATION = 0x11
KIND_BUCKETING = 0x12
KIND_FM = 0x13
KIND_EXACT = 0x14
KIND_SHARDED = 0x15
KIND_WINDOWED = 0x16


# --------------------------------------------------------------------------
# Primitive writers.  Everything is little-endian; wide integers are
# u32-length-prefixed little-endian byte strings.

def _w_u8(out: List[bytes], v: int) -> None:
    out.append(struct.pack("<B", v))


def _w_u16(out: List[bytes], v: int) -> None:
    out.append(struct.pack("<H", v))


def _w_u32(out: List[bytes], v: int) -> None:
    out.append(struct.pack("<I", v))


def _w_u64(out: List[bytes], v: int) -> None:
    out.append(struct.pack("<Q", v))


def _w_i64(out: List[bytes], v: int) -> None:
    out.append(struct.pack("<q", v))


def _w_f64(out: List[bytes], v: float) -> None:
    out.append(struct.pack("<d", v))


def _w_bigint(out: List[bytes], v: int) -> None:
    """A non-negative arbitrary-precision int: u32 byte count + LE bytes."""
    if v < 0:
        raise StoreFormatError("wire big-ints are non-negative")
    nbytes = (v.bit_length() + 7) // 8
    out.append(struct.pack("<I", nbytes))
    out.append(v.to_bytes(nbytes, "little"))


def _w_bigint_list(out: List[bytes], values) -> None:
    _w_u32(out, len(values))
    for v in values:
        _w_bigint(out, int(v))


def _w_bits(out: List[bytes], bits) -> None:
    """A bit vector (e.g. LinearHash offsets), 8 bits per byte, LSB first."""
    _w_u32(out, len(bits))
    packed = bytearray((len(bits) + 7) // 8)
    for i, b in enumerate(bits):
        if b:
            packed[i >> 3] |= 1 << (i & 7)
    out.append(bytes(packed))


class _Reader:
    """Bounds-checked little-endian reader over one payload."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        end = self._pos + n
        if end > len(self._data):
            raise StoreFormatError("truncated payload")
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def u8(self) -> int:
        """One unsigned byte."""
        return struct.unpack("<B", self._take(1))[0]

    def u16(self) -> int:
        """A little-endian unsigned 16-bit int."""
        return struct.unpack("<H", self._take(2))[0]

    def u32(self) -> int:
        """A little-endian unsigned 32-bit int."""
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        """A little-endian unsigned 64-bit int."""
        return struct.unpack("<Q", self._take(8))[0]

    def i64(self) -> int:
        """A little-endian signed 64-bit int."""
        return struct.unpack("<q", self._take(8))[0]

    def f64(self) -> float:
        """A little-endian IEEE-754 double."""
        return struct.unpack("<d", self._take(8))[0]

    def bigint(self) -> int:
        """A length-prefixed arbitrary-precision non-negative int."""
        nbytes = self.u32()
        return int.from_bytes(self._take(nbytes), "little")

    def bigint_list(self) -> List[int]:
        """A count-prefixed list of big-ints."""
        return [self.bigint() for _ in range(self.u32())]

    def bits(self) -> List[int]:
        """A count-prefixed bit vector (LSB-first packing)."""
        count = self.u32()
        packed = self._take((count + 7) // 8)
        return [(packed[i >> 3] >> (i & 7)) & 1 for i in range(count)]

    def expect_exhausted(self) -> None:
        """Raise unless the whole payload was consumed."""
        if self._pos != len(self._data):
            raise StoreFormatError(
                f"{len(self._data) - self._pos} trailing bytes after payload")


# --------------------------------------------------------------------------
# Shared fragments.

def _w_params(out: List[bytes], params: SketchParams) -> None:
    _w_f64(out, params.eps)
    _w_f64(out, params.delta)
    _w_f64(out, params.thresh_constant)
    _w_f64(out, params.repetitions_constant)


def _r_params(r: _Reader) -> SketchParams:
    try:
        return SketchParams(eps=r.f64(), delta=r.f64(),
                            thresh_constant=r.f64(),
                            repetitions_constant=r.f64())
    except ReproError as exc:
        raise StoreFormatError(f"invalid sketch parameters: {exc}") from exc


def _w_linear_hash(out: List[bytes], h: LinearHash) -> None:
    _w_u32(out, h.in_bits)
    _w_u64(out, h.seed_bits)
    _w_bigint_list(out, h.rows)
    _w_bits(out, h.offsets)


def _r_linear_hash(r: _Reader) -> LinearHash:
    in_bits = r.u32()
    seed_bits = r.u64()
    rows = r.bigint_list()
    offsets = r.bits()
    if len(offsets) != len(rows):
        raise StoreFormatError("hash rows and offsets disagree in length")
    return LinearHash(in_bits, rows, offsets, seed_bits=seed_bits)


def _w_kwise_hash(out: List[bytes], h: KWiseHash) -> None:
    _w_u32(out, h.field.n)
    _w_bigint_list(out, h.coeffs)


def _r_kwise_hash(r: _Reader, field_cache: Dict[int, GF2n]) -> KWiseHash:
    n = r.u32()
    if not 1 <= n <= 4096:
        # A corrupted width would otherwise trigger an open-ended
        # irreducible-modulus search inside GF2n.
        raise StoreFormatError(f"implausible field width {n}")
    coeffs = r.bigint_list()
    field = field_cache.get(n)
    if field is None:
        try:
            field = GF2n(n)
        except ReproError as exc:
            raise StoreFormatError(f"invalid field width {n}") from exc
        field_cache[n] = field
    return KWiseHash(field, coeffs)


# --------------------------------------------------------------------------
# Per-kind encoders / decoders.  Each encoder appends the kind payload;
# each decoder consumes exactly that payload from the reader.

def _enc_linear_hash(out: List[bytes], h: LinearHash) -> None:
    _w_linear_hash(out, h)


def _dec_linear_hash(r: _Reader) -> LinearHash:
    return _r_linear_hash(r)


def _enc_kwise_hash(out: List[bytes], h: KWiseHash) -> None:
    _w_kwise_hash(out, h)


def _dec_kwise_hash(r: _Reader) -> KWiseHash:
    return _r_kwise_hash(r, {})


def _enc_minimum(out: List[bytes], sk: MinimumF0) -> None:
    _w_u32(out, sk.universe_bits)
    _w_params(out, sk.params)
    _w_u32(out, len(sk.rows))
    for row in sk.rows:
        _w_linear_hash(out, row.h)
        _w_u64(out, row.thresh)
        _w_bigint_list(out, row.values())


def _dec_minimum(r: _Reader) -> MinimumF0:
    sk = object.__new__(MinimumF0)
    sk.universe_bits = r.u32()
    sk.params = _r_params(r)
    rows: List[MinimumRow] = []
    for _ in range(r.u32()):
        h = _r_linear_hash(r)
        thresh = r.u64()
        if thresh < 1:
            raise StoreFormatError("minimum row thresh must be >= 1")
        row = MinimumRow(h, thresh)
        values = r.bigint_list()
        if len(values) > thresh:
            raise StoreFormatError("minimum row holds more than thresh "
                                   "values")
        if any(v >> h.out_bits for v in values):
            raise StoreFormatError("minimum value wider than the hash "
                                   "range")
        row.insert_values(values)
        rows.append(row)
    sk.rows = rows
    return sk


def _enc_estimation(out: List[bytes], sk: EstimationF0) -> None:
    _w_u32(out, sk.universe_bits)
    _w_params(out, sk.params)
    _w_u32(out, len(sk.rows))
    for row in sk.rows:
        _w_u32(out, len(row.hashes))
        for h in row.hashes:
            _w_kwise_hash(out, h)
        for t in row.maxima:
            _w_i64(out, t)


def _dec_estimation(r: _Reader) -> EstimationF0:
    sk = object.__new__(EstimationF0)
    sk.universe_bits = r.u32()
    sk.params = _r_params(r)
    fields: Dict[int, GF2n] = {}
    rows: List[EstimationRow] = []
    for _ in range(r.u32()):
        width = r.u32()
        hashes = [_r_kwise_hash(r, fields) for _ in range(width)]
        row = EstimationRow(hashes)
        row.maxima = [r.i64() for _ in range(width)]
        if any(not 0 <= t <= h.out_bits
               for t, h in zip(row.maxima, hashes)):
            raise StoreFormatError("estimation trail-zero level out of "
                                   "range")
        rows.append(row)
    sk.rows = rows
    sk._version = 0
    sk._r_cache = VersionedCache()
    sk._estimate_cache = VersionedCache()
    return sk


def _enc_bucketing(out: List[bytes], sk: BucketingF0) -> None:
    _w_u32(out, sk.universe_bits)
    _w_params(out, sk.params)
    _w_u32(out, len(sk.rows))
    for row in sk.rows:
        _w_u8(out, 1 if row.h is not None else 0)
        if row.h is not None:
            _w_linear_hash(out, row.h)
        _w_u32(out, row.out_bits)
        _w_u64(out, row.thresh)
        _w_u32(out, row.level)
        members = sorted(row.bucket)
        _w_u32(out, len(members))
        for x in members:
            _w_bigint(out, x)
            _w_u32(out, row._level_of(x))


def _dec_bucketing(r: _Reader) -> BucketingF0:
    sk = object.__new__(BucketingF0)
    sk.universe_bits = r.u32()
    sk.params = _r_params(r)
    rows: List[BucketingRow] = []
    for _ in range(r.u32()):
        has_hash = r.u8()
        h = _r_linear_hash(r) if has_hash else None
        out_bits = r.u32()
        thresh = r.u64()
        level = r.u32()
        if h is not None and h.out_bits != out_bits:
            raise StoreFormatError("bucketing row out_bits disagrees with "
                                   "its hash")
        if level > out_bits:
            raise StoreFormatError("bucketing level beyond the hash "
                                   "range")
        row = BucketingRow(h, thresh, out_bits=out_bits)
        row.level = level
        for _ in range(r.u32()):
            x = r.bigint()
            lvl = r.u32()
            if not level <= lvl <= out_bits:
                raise StoreFormatError("bucket member level outside "
                                       "[row level, out_bits]")
            row._levels[x] = lvl
            row.bucket.add(x)
        if len(row.bucket) >= thresh and level < out_bits:
            # _shrink maintains size < thresh except at the level cap; a
            # frame violating that would silently inflate the estimate.
            raise StoreFormatError("bucketing row violates the "
                                   "size < thresh invariant")
        rows.append(row)
    sk.rows = rows
    return sk


def _enc_fm(out: List[bytes], sk: FlajoletMartinF0) -> None:
    _w_u32(out, sk.universe_bits)
    _w_u32(out, len(sk.hashes))
    for h in sk.hashes:
        _w_linear_hash(out, h)
    for t in sk.max_trail:
        _w_i64(out, t)


def _dec_fm(r: _Reader) -> FlajoletMartinF0:
    sk = object.__new__(FlajoletMartinF0)
    sk.universe_bits = r.u32()
    count = r.u32()
    sk.hashes = [_r_linear_hash(r) for _ in range(count)]
    sk.max_trail = [r.i64() for _ in range(count)]
    if any(not -1 <= t <= h.out_bits
           for t, h in zip(sk.max_trail, sk.hashes)):
        raise StoreFormatError("FM trail-zero level out of range")
    return sk


def _enc_exact(out: List[bytes], sk: ExactF0) -> None:
    _w_bigint_list(out, sorted(sk._seen))


def _dec_exact(r: _Reader) -> ExactF0:
    sk = ExactF0()
    sk._seen = set(r.bigint_list())
    return sk


def _enc_sharded(out: List[bytes], sk: ShardedF0) -> None:
    # Shards nest as full self-describing frames: a shard is itself a
    # sketch, and reusing the top-level format keeps one decode path.
    _w_u32(out, sk._cursor)
    _w_u32(out, len(sk.shards))
    for shard in sk.shards:
        blob = dumps(shard)
        _w_u32(out, len(blob))
        out.append(blob)


def _dec_sharded(r: _Reader) -> ShardedF0:
    cursor = r.u32()
    count = r.u32()
    if count < 1:
        raise StoreFormatError("a sharded sketch needs >= 1 shard")
    shards = [loads(r._take(r.u32())) for _ in range(count)]
    for shard in shards:
        if isinstance(shard, (LinearHash, KWiseHash)):
            raise StoreFormatError("a shard frame holds a hash, not a "
                                   "sketch")
    sk = object.__new__(ShardedF0)
    sk.shards = shards
    sk._cursor = cursor % count
    sk._init_caches()
    return sk


def _enc_windowed(out: List[bytes], sk: WindowedF0) -> None:
    # The pristine prototype and every ring bucket nest as full
    # self-describing frames (the ShardedF0 pattern): one decode path,
    # and a restored window keeps minting evicted buckets from the
    # exact seeds the original drew.
    _w_f64(out, sk.window)
    _w_u32(out, len(sk.buckets))
    _w_i64(out, sk._epoch)
    _w_u64(out, sk.evictions)
    proto = dumps(sk._proto)
    _w_u32(out, len(proto))
    out.append(proto)
    for idx, bucket in enumerate(sk.buckets):
        _w_i64(out, sk._bucket_epochs[idx])
        _w_u64(out, 1 if sk._bucket_dirty[idx] else 0)
        blob = dumps(bucket)
        _w_u32(out, len(blob))
        out.append(blob)


def _dec_windowed(r: _Reader) -> WindowedF0:
    window = r.f64()
    count = r.u32()
    epoch = r.i64()
    evictions = r.u64()
    if not window > 0:
        raise StoreFormatError("windowed span must be positive")
    if count < 1:
        raise StoreFormatError("a windowed sketch needs >= 1 bucket")
    proto = loads(r._take(r.u32()))
    buckets: List[object] = []
    bucket_epochs: List[int] = []
    bucket_dirty: List[bool] = []
    for idx in range(count):
        bucket_epoch = r.i64()
        dirty = r.u64()
        bucket = loads(r._take(r.u32()))
        if not epoch - count < bucket_epoch <= epoch:
            raise StoreFormatError("windowed bucket epoch outside the "
                                   "live ring")
        if bucket_epoch % count != idx:
            raise StoreFormatError("windowed bucket epoch misplaced in "
                                   "the ring")
        buckets.append(bucket)
        bucket_epochs.append(bucket_epoch)
        bucket_dirty.append(bool(dirty))
    for nested in [proto] + buckets:
        if isinstance(nested, (LinearHash, KWiseHash)):
            raise StoreFormatError("a windowed frame holds a hash, not "
                                   "a sketch")
    sk = object.__new__(WindowedF0)
    sk.window = window
    sk._proto = proto
    sk.buckets = buckets
    sk._epoch = epoch
    sk._bucket_epochs = bucket_epochs
    sk._bucket_dirty = bucket_dirty
    sk.evictions = evictions
    sk._clock = None
    sk._init_caches()
    return sk


_Encoder = Callable[[List[bytes], object], None]
_Decoder = Callable[[_Reader], object]

_ENCODERS: Dict[type, Tuple[int, _Encoder]] = {
    LinearHash: (KIND_LINEAR_HASH, _enc_linear_hash),
    KWiseHash: (KIND_KWISE_HASH, _enc_kwise_hash),
    MinimumF0: (KIND_MINIMUM, _enc_minimum),
    EstimationF0: (KIND_ESTIMATION, _enc_estimation),
    BucketingF0: (KIND_BUCKETING, _enc_bucketing),
    FlajoletMartinF0: (KIND_FM, _enc_fm),
    ExactF0: (KIND_EXACT, _enc_exact),
    ShardedF0: (KIND_SHARDED, _enc_sharded),
    WindowedF0: (KIND_WINDOWED, _enc_windowed),
}

_DECODERS: Dict[int, _Decoder] = {
    KIND_LINEAR_HASH: _dec_linear_hash,
    KIND_KWISE_HASH: _dec_kwise_hash,
    KIND_MINIMUM: _dec_minimum,
    KIND_ESTIMATION: _dec_estimation,
    KIND_BUCKETING: _dec_bucketing,
    KIND_FM: _dec_fm,
    KIND_EXACT: _dec_exact,
    KIND_SHARDED: _dec_sharded,
    KIND_WINDOWED: _dec_windowed,
}


# --------------------------------------------------------------------------
# Public API.

def dumps(obj) -> bytes:
    """Serialize a sketch or hash function to the versioned wire format.

    Args:
        obj: any registered sketch (:class:`MinimumF0`,
            :class:`EstimationF0`, :class:`BucketingF0`,
            :class:`FlajoletMartinF0`, :class:`ExactF0`,
            :class:`ShardedF0`) or hash function (:class:`LinearHash`,
            :class:`KWiseHash`).

    Returns:
        A self-describing ``bytes`` frame: magic, version, kind tag,
        payload.

    Raises:
        StoreFormatError: ``obj`` is not a serializable type.
    """
    entry = _ENCODERS.get(type(obj))
    if entry is None:
        raise StoreFormatError(
            f"cannot serialize objects of type {type(obj).__name__}")
    kind, encoder = entry
    out: List[bytes] = [MAGIC, struct.pack("<H", FORMAT_VERSION),
                        struct.pack("<B", kind)]
    encoder(out, obj)
    return b"".join(out)


def loads(data: bytes):
    """Decode one frame produced by :func:`dumps`.

    Args:
        data: the full frame; partial or over-long inputs are rejected.

    Returns:
        The reconstructed sketch or hash function, behaviourally
        bit-identical to the object that was serialized.

    Raises:
        StoreFormatError: bad magic, unknown version or kind tag,
            truncated payload, trailing bytes, or inconsistent fields.
    """
    r = _Reader(bytes(data))
    if r._take(len(MAGIC)) != MAGIC:
        raise StoreFormatError("bad magic: not a repro sketch frame")
    version = r.u16()
    if version != FORMAT_VERSION:
        raise StoreFormatError(
            f"unsupported format version {version} "
            f"(this build reads version {FORMAT_VERSION})")
    kind = r.u8()
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise StoreFormatError(f"unknown kind tag 0x{kind:02x}")
    obj = decoder(r)
    r.expect_exhausted()
    return obj


#: The sketch classes (everything :func:`dumps` accepts except the bare
#: hash functions); what :func:`loads_sketch` constrains decodes to.
SKETCH_TYPES = (MinimumF0, EstimationF0, BucketingF0, FlajoletMartinF0,
                ExactF0, ShardedF0, WindowedF0)


def loads_sketch(data: bytes):
    """:func:`loads` constrained to sketch frames.

    Hash functions share the wire format's kind namespace; callers that
    semantically require a *sketch* (the store's upload/merge paths) use
    this so a hash frame is rejected up front instead of becoming a
    registry entry that fails on ``estimate()``.

    Raises:
        StoreFormatError: malformed frame, or a frame holding a hash
            function rather than a sketch.
    """
    obj = loads(data)
    if not isinstance(obj, SKETCH_TYPES):
        raise StoreFormatError(
            f"expected a serialized sketch, found {type(obj).__name__}")
    return obj


def loads_typed(data: bytes, expected: Type):
    """:func:`loads` plus a type check.

    Args:
        data: a frame produced by :func:`dumps`.
        expected: the class the caller requires.

    Returns:
        The decoded object, guaranteed to be an ``expected`` instance.

    Raises:
        StoreFormatError: the frame is malformed or decodes to a
            different type.
    """
    obj = loads(data)
    if not isinstance(obj, expected):
        raise StoreFormatError(
            f"expected a serialized {expected.__name__}, "
            f"found {type(obj).__name__}")
    return obj


def serialized_size(obj) -> int:
    """``len(dumps(obj))`` -- the sketch's on-wire footprint in bytes."""
    return len(dumps(obj))
