"""A thread-safe named registry of live sketches with durable snapshots.

:class:`SketchStore` is the state a long-lived F0 counting service
holds: sketches addressed by name, mutated concurrently by many
clients, periodically snapshotted to disk, and restored after a
restart.  It is deliberately independent of HTTP -- the service in
:mod:`repro.service` is a thin shell over it, and embedded users (a
worker that accumulates shard uploads, a notebook) can use it directly.

Concurrency model
-----------------

A registry-wide lock guards the name map only (lookups, inserts,
deletes -- all O(1)); every entry additionally owns its *own* lock,
held for the duration of any sketch mutation (``ingest``,
``merge_into``) or cache rebuild.  Concurrent shard uploads against one
name therefore serialize against each other -- ``merge`` is not
atomic at the Python level across a sketch's rows -- while traffic on
different names proceeds in parallel.

The read path is concurrency-first: every mutation bumps the entry's
version counter, and ``estimate`` / ``info`` / ``serialized`` are
served from a :class:`CachedView` memoised against that counter.  A
warm read takes **no lock at all** (it checks the published view's
version and returns it -- the view is an immutable snapshot, so a
racing mutation can at worst make the read linearize just before it);
only a version mismatch takes the entry lock to rebuild.  For
:class:`~repro.streaming.sharded.ShardedF0` entries this is the
difference between O(1) and a full merge-per-estimate.
:data:`VIEW_METRICS` counts hits/builds/serializations so tests and
benchmarks can assert the zero-work warm path.

TTL semantics
-------------

An entry created with ``ttl=T`` expires ``T`` seconds after its last
*mutation* (create, ingest, merge, replace); reads do not refresh it.
Expired entries are reaped lazily on access and by
:meth:`evict_expired` -- the
:class:`~repro.service.server.TTLSweeper` thread (enabled with
``repro serve --sweep-interval``) calls it periodically, so a live
service sheds expired entries even when nothing reads them.  The
clock is injectable for tests and defaults to ``time.monotonic``;
snapshots persist each entry's ``ttl`` but restart its countdown on
restore (a restored store has no meaningful "time since mutation").

Snapshots
---------

:meth:`snapshot` writes every entry's serialized frame into one file
-- to a temporary sibling first, then an atomic ``os.replace``, so a
crash mid-write can never leave a half-snapshot under the target name.
:meth:`restore` rebuilds the registry from such a file.
"""

from __future__ import annotations

import os
import struct
import tempfile
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional

from repro.common.errors import ReproError
from repro.store.serialize import (
    FORMAT_VERSION,
    StoreFormatError,
    dumps,
    loads,
)

#: Magic of a snapshot file (one frame per stored sketch inside).
SNAPSHOT_MAGIC = b"RF0T"

#: How many times ``put(merge=True)`` retries the merge when the entry
#: keeps being deleted/expired and re-created underneath it.
MAX_PUT_RETRIES = 3


class SketchNotFoundError(ReproError, KeyError):
    """The named sketch does not exist (or has expired)."""


class SketchExistsError(ReproError):
    """A create targeted a name that is already registered."""


class SketchConflictError(ReproError):
    """A merge-on-put kept losing the race against concurrent
    delete/expire/re-create cycles on the same name and gave up after
    :data:`MAX_PUT_RETRIES` attempts."""


class ViewMetrics:
    """Process-wide counters for the cached read path.

    ``hits`` counts warm (lock-free) view reads, ``builds`` counts view
    rebuilds after a mutation, and ``serializations`` counts the wire
    frames encoded for those rebuilds.  Tests and benchmarks
    :meth:`reset` these and assert, e.g., that a warm ``estimate`` loop
    performs zero builds and zero serializations.
    """

    __slots__ = ("hits", "builds", "serializations")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.builds = 0
        self.serializations = 0


#: The store's global read-path instrumentation (all instances share it;
#: per-entry granularity comes from the sketches' own counters, e.g.
#: ``ShardedF0.merge_rebuilds``).
VIEW_METRICS = ViewMetrics()


class CachedView:
    """Immutable read products of one entry at a fixed version.

    The store-level generalization of the memoisation
    :class:`~repro.streaming.estimation.EstimationF0` does internally:
    estimate, kind and footprint are captured eagerly when the view is
    built; the wire frame is filled lazily on the first ``serialized``
    / ``info`` read at this version (ingest-heavy entries never pay for
    frames nobody asks for).  A view never outlives its entry -- it is
    reachable only through the :class:`StoredSketch` that owns it.
    """

    __slots__ = ("version", "kind", "estimate", "space_bits", "frame")

    def __init__(self, version: int, kind: str, estimate: float,
                 space_bits: int) -> None:
        self.version = version
        self.kind = kind
        self.estimate = estimate
        self.space_bits = space_bits
        self.frame: Optional[bytes] = None  # Lazily filled under lock.


class StoredSketch:
    """One registry entry: a sketch plus its lock, version counter,
    cached view and lifecycle stamps."""

    __slots__ = ("name", "sketch", "ttl", "created_at", "updated_at",
                 "lock", "version", "view")

    def __init__(self, name: str, sketch, ttl: Optional[float],
                 now: float) -> None:
        self.name = name
        self.sketch = sketch
        self.ttl = ttl
        self.created_at = now
        self.updated_at = now
        self.lock = threading.Lock()
        self.version = 0  # Bumped (under ``lock``) by every mutation.
        self.view: Optional[CachedView] = None

    def expired(self, now: float) -> bool:
        """Whether the TTL has elapsed since the last mutation."""
        return self.ttl is not None and now - self.updated_at > self.ttl


class SketchStore:
    """Named, mergeable, snapshottable sketch registry (see module doc)."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._registry_lock = threading.RLock()
        self._entries: Dict[str, StoredSketch] = {}

    # -- name map ----------------------------------------------------------

    def _reap_if_expired(self, name: str, entry: StoredSketch) -> bool:
        """Evict one expired entry -- but never mid-mutation.

        Called under the registry lock.  The entry lock is try-acquired:
        if a mutation (or view rebuild) holds it, the entry survives
        this round -- the mutation refreshes ``updated_at`` anyway, and
        evicting underneath it would silently discard its work.  Expiry
        is re-checked under the entry lock for the same reason.

        Returns True when the entry was removed.
        """
        if not entry.lock.acquire(blocking=False):
            return False
        try:
            if entry.expired(self._clock()) \
                    and self._entries.get(name) is entry:
                del self._entries[name]
                return True
            return False
        finally:
            entry.lock.release()

    def _entry(self, name: str) -> StoredSketch:
        """Look up a live entry, reaping it first if expired."""
        with self._registry_lock:
            entry = self._entries.get(name)
            if entry is not None and entry.expired(self._clock()) \
                    and self._reap_if_expired(name, entry):
                entry = None
        if entry is None:
            raise SketchNotFoundError(name)
        return entry

    def create(self, name: str, sketch, ttl: Optional[float] = None) -> None:
        """Register a sketch under a fresh name.

        Raises:
            SketchExistsError: the name is already registered (and not
                expired, or expired but mid-mutation).
        """
        if ttl is not None and ttl <= 0:
            raise ReproError("ttl must be positive (or None for no expiry)")
        now = self._clock()
        with self._registry_lock:
            existing = self._entries.get(name)
            if existing is not None:
                if not existing.expired(now) \
                        or not self._reap_if_expired(name, existing):
                    raise SketchExistsError(
                        f"sketch {name!r} already exists")
            self._entries[name] = StoredSketch(name, sketch, ttl, now)

    def delete(self, name: str) -> None:
        """Remove a sketch; raises :class:`SketchNotFoundError` if absent."""
        with self._registry_lock:
            if name not in self._entries:
                raise SketchNotFoundError(name)
            del self._entries[name]

    def names(self) -> List[str]:
        """Live sketch names, sorted (expired entries excluded)."""
        now = self._clock()
        with self._registry_lock:
            return sorted(n for n, e in self._entries.items()
                          if not e.expired(now))

    def __contains__(self, name: str) -> bool:
        now = self._clock()
        with self._registry_lock:
            entry = self._entries.get(name)
            return entry is not None and not entry.expired(now)

    def __len__(self) -> int:
        return len(self.names())

    # -- sketch operations (entry-locked) ----------------------------------

    def get(self, name: str):
        """The live sketch object itself (callers share it; mutate only
        through the store so the entry lock applies)."""
        return self._entry(name).sketch

    def ingest(self, name: str, items: Iterable[int]) -> int:
        """Feed a batch of items through the sketch's batch path.

        Returns the number of items ingested.  Runs under the entry
        lock, so concurrent ingests against one name serialize.
        """
        entry = self._entry(name)
        batch = items if isinstance(items, (list, tuple)) else list(items)
        with entry.lock:
            entry.sketch.process_batch(batch)
            entry.version += 1
            entry.updated_at = self._clock()
        return len(batch)

    def merge_into(self, name: str, incoming) -> None:
        """Merge-on-put: fold an uploaded sketch into the stored one.

        This is the coordinator combine as a storage primitive -- shard
        workers build replicas with the prototype's seeds, ingest their
        partition, and upload; the store folds each upload in under the
        entry lock, so any number of concurrent shard uploads serialize
        correctly.

        Raises:
            SketchNotFoundError: no sketch is registered under ``name``.
            ReproError: the sketches are incompatible (different widths
                or hash seeds -- surfaced from the sketch's own
                ``merge`` check).
        """
        entry = self._entry(name)
        with entry.lock:
            entry.sketch.merge(incoming)
            entry.version += 1
            entry.updated_at = self._clock()

    def advance(self, name: str, now: float) -> int:
        """Rotate a windowed sketch's ring to logical time ``now``.

        A mutation like any other: it runs under the entry lock, bumps
        the version counter (invalidating the cached view) and
        refreshes the TTL stamp.  Time never moves backwards, so
        replaying an advance is harmless.

        Returns the number of ring buckets rotated.

        Raises:
            SketchNotFoundError: no live sketch under ``name``.
            ReproError: the stored sketch is not windowed (see
                :class:`~repro.streaming.windowed.WindowedF0`).
        """
        entry = self._entry(name)
        with entry.lock:
            rotate = getattr(entry.sketch, "advance", None)
            if rotate is None:
                raise ReproError(
                    f"sketch {name!r} "
                    f"({type(entry.sketch).__name__}) is not windowed: "
                    f"nothing to advance")
            rotated = rotate(float(now))
            entry.version += 1
            entry.updated_at = self._clock()
        return rotated

    def estimate_window(self, name: str, span: float) -> float:
        """A windowed sketch's estimate over the trailing ``span``.

        Runs under the entry lock (partial-span merges are built inside
        the sketch and memoised there, so repeated reads of a quiet
        window stay cheap) and never rotates the ring -- pair with
        :meth:`advance` to move time forward.

        Raises:
            SketchNotFoundError: no live sketch under ``name``.
            ReproError: the stored sketch is not windowed, or ``span``
                is outside ``(0, window]``.
        """
        entry = self._entry(name)
        with entry.lock:
            reader = getattr(entry.sketch, "estimate_window", None)
            if reader is None:
                raise ReproError(
                    f"sketch {name!r} "
                    f"({type(entry.sketch).__name__}) is not windowed: "
                    f"no windowed estimates")
            return reader(float(span))

    def put(self, name: str, sketch, ttl: Optional[float] = None,
            merge: bool = False) -> None:
        """Store a sketch: create, replace, or (``merge=True``) fold into
        an existing entry; absent names are created either way.

        Raises:
            SketchConflictError: ``merge=True`` and the name kept being
                deleted/expired and re-created between the existence
                check and the merge, :data:`MAX_PUT_RETRIES` times in a
                row.  (A merge *rejected* by the entry -- incompatible
                seeds or kind -- raises the entry's own error
                immediately instead of spinning against it.)
        """
        if not merge:
            now = self._clock()
            with self._registry_lock:
                self._entries[name] = StoredSketch(name, sketch, ttl, now)
            return
        for _ in range(MAX_PUT_RETRIES):
            try:
                self.merge_into(name, sketch)
                return
            except SketchNotFoundError:
                pass
            with self._registry_lock:
                existing = self._entries.get(name)
                if existing is None or (
                        existing.expired(self._clock())
                        and self._reap_if_expired(name, existing)):
                    self._entries[name] = StoredSketch(
                        name, sketch, ttl, self._clock())
                    return
            # A concurrent create slipped in between the failed merge
            # and the registry lock; loop to merge against it.
        raise SketchConflictError(
            f"merge-on-put of {name!r} lost the delete/re-create race "
            f"{MAX_PUT_RETRIES} times; giving up")

    # -- cached read path --------------------------------------------------

    def _view(self, entry: StoredSketch,
              need_frame: bool = False) -> CachedView:
        """The entry's view at its current version (lock-free when warm).

        A fresh published view is returned without touching the entry
        lock -- the view is immutable, so a racing mutation just means
        this read linearizes before it.  On version mismatch the entry
        lock is taken and the view rebuilt; ``need_frame`` additionally
        fills the lazily-encoded wire frame.
        """
        view = entry.view
        if view is not None and view.version == entry.version \
                and (view.frame is not None or not need_frame):
            VIEW_METRICS.hits += 1
            return view
        with entry.lock:
            view = entry.view
            if view is None or view.version != entry.version:
                sketch = entry.sketch
                view = CachedView(entry.version, type(sketch).__name__,
                                  sketch.estimate(), sketch.space_bits())
                VIEW_METRICS.builds += 1
            if need_frame and view.frame is None:
                view.frame = dumps(entry.sketch)
                VIEW_METRICS.serializations += 1
            entry.view = view
        return view

    def estimate(self, name: str) -> float:
        """The named sketch's current F0 estimate (a warm cached view
        makes this a lock-free O(1) read)."""
        return self._view(self._entry(name)).estimate

    def entry_version(self, name: str) -> int:
        """The named entry's mutation counter (bumped by every write).

        This is the same counter the cached-view read path is memoised
        against; change-capture layers (the multi-process delta log)
        compare it against a last-published mark to detect dirty
        entries without touching the sketch.

        Raises:
            SketchNotFoundError: no live sketch under ``name``.
        """
        return self._entry(name).version

    def info(self, name: str) -> Dict[str, object]:
        """Metadata for one entry: kind, estimate, footprints, stamps."""
        entry = self._entry(name)
        view = self._view(entry, need_frame=True)
        return {
            "name": name,
            "kind": view.kind,
            "estimate": view.estimate,
            "space_bits": view.space_bits,
            "serialized_bytes": len(view.frame),
            "ttl": entry.ttl,
            "age_seconds": self._clock() - entry.updated_at,
        }

    def serialized(self, name: str) -> bytes:
        """The named sketch's wire frame (served from the cached view;
        encoded at most once per mutation epoch)."""
        return self._view(self._entry(name), need_frame=True).frame

    # -- lifecycle ---------------------------------------------------------

    def evict_expired(self) -> List[str]:
        """Reap every expired entry; returns the evicted names.

        Entries whose lock is held (a mutation or view rebuild in
        flight) are skipped this round rather than evicted mid-mutation
        -- the mutation refreshes ``updated_at`` when it completes, and
        a later sweep re-examines whatever is genuinely stale.
        """
        now = self._clock()
        with self._registry_lock:
            stale = [(n, e) for n, e in self._entries.items()
                     if e.expired(now)]
            dead = [n for n, e in stale if self._reap_if_expired(n, e)]
        return sorted(dead)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self, path: str) -> int:
        """Atomically persist every live entry to ``path``.

        The file is written to a temporary sibling and moved into place
        with ``os.replace``, so readers never observe a partial
        snapshot.  Returns the number of sketches written.
        """
        now = self._clock()
        with self._registry_lock:
            entries = [e for e in self._entries.values()
                       if not e.expired(now)]
        # Serialize outside the registry lock (dumps of a large sketch
        # is slow; the name-map lock must stay O(1)-held), under each
        # entry's own lock so the frame is internally consistent.
        frames = []
        for entry in entries:
            with entry.lock:
                view = entry.view
                if view is not None and view.version == entry.version \
                        and view.frame is not None:
                    blob = view.frame  # Fresh cached frame: reuse.
                else:
                    blob = dumps(entry.sketch)
                frames.append((entry.name, entry.ttl, blob))
        out = [SNAPSHOT_MAGIC, struct.pack("<H", FORMAT_VERSION),
               struct.pack("<I", len(frames))]
        for name, ttl, blob in frames:
            encoded = name.encode("utf-8")
            out.append(struct.pack("<I", len(encoded)))
            out.append(encoded)
            out.append(struct.pack("<B", 0 if ttl is None else 1))
            out.append(struct.pack("<d", 0.0 if ttl is None else ttl))
            out.append(struct.pack("<I", len(blob)))
            out.append(blob)
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(prefix=".sketchstore-", dir=directory)
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(b"".join(out))
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(frames)

    def restore(self, path: str, replace: bool = True) -> int:
        """Rebuild the registry from a :meth:`snapshot` file.

        Args:
            path: snapshot file to read.
            replace: drop current entries first (default); with
                ``False``, snapshot entries overwrite same-named entries
                and leave others alone.

        Returns:
            The number of sketches restored.

        Raises:
            StoreFormatError: the file is not a snapshot, is from an
                unknown version, or holds a malformed frame.
        """
        with open(path, "rb") as f:
            data = f.read()
        view = memoryview(data)
        pos = 0

        def take(n: int) -> bytes:
            nonlocal pos
            if pos + n > len(view):
                raise StoreFormatError("truncated snapshot")
            chunk = bytes(view[pos:pos + n])
            pos += n
            return chunk

        if take(4) != SNAPSHOT_MAGIC:
            raise StoreFormatError("bad magic: not a sketch-store snapshot")
        (version,) = struct.unpack("<H", take(2))
        if version != FORMAT_VERSION:
            raise StoreFormatError(
                f"unsupported snapshot version {version}")
        (count,) = struct.unpack("<I", take(4))
        loaded = []
        for _ in range(count):
            (name_len,) = struct.unpack("<I", take(4))
            name = take(name_len).decode("utf-8")
            (has_ttl,) = struct.unpack("<B", take(1))
            (ttl_value,) = struct.unpack("<d", take(8))
            (blob_len,) = struct.unpack("<I", take(4))
            sketch = loads(take(blob_len))
            loaded.append((name, ttl_value if has_ttl else None, sketch))
        if pos != len(view):
            raise StoreFormatError("trailing bytes after snapshot")
        now = self._clock()
        with self._registry_lock:
            if replace:
                self._entries.clear()
            for name, ttl, sketch in loaded:
                self._entries[name] = StoredSketch(name, sketch, ttl, now)
        return len(loaded)
