"""Multidimensional ranges and their DNF/subcube compilation (Lemma 4).

A 1-dimensional range ``[lo, hi]`` decomposes into at most ``2n`` disjoint
*aligned subcubes* (the segment-tree cover): repeatedly peel the largest
power-of-two block aligned at the current left end.  Each subcube fixes the
high bits and frees the low bits -- i.e. it is a DNF term.  A d-dimensional
range is the product, with dimension ``i`` occupying variables
``i*n + 1 .. (i+1)*n`` (dimension 0 in the lowest bits); its DNF has at
most ``(2n)^d`` terms, materialised lazily.

Observation 1's hard instance ``[1, 2^n - 1]^d`` compiles to exactly
``n^d`` terms here, matching the paper's lower bound on DNF size.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.common.errors import InvalidParameterError
from repro.formulas.dnf import DnfFormula, DnfTerm
from repro.gf2.affine import AffineSubspace


def aligned_subcubes(lo: int, hi: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(base, free_bits)`` blocks partitioning ``[lo, hi]``.

    Each block is ``{base, ..., base + 2**free_bits - 1}`` with ``base``
    aligned to ``2**free_bits``; at most ``2 * ceil(log2(hi+2))`` blocks.
    """
    if lo > hi:
        return
    cursor = lo
    while cursor <= hi:
        remaining = hi - cursor + 1
        size = 1 << (remaining.bit_length() - 1)  # Largest pow2 that fits.
        if cursor:
            size = min(size, cursor & -cursor)    # Respect alignment.
        yield cursor, size.bit_length() - 1
        cursor += size


def subcube_to_term(base: int, free_bits: int, num_bits: int,
                    var_offset: int = 0) -> DnfTerm:
    """The DNF term fixing bits ``free_bits..num_bits-1`` to ``base``'s."""
    lits = []
    for bit in range(free_bits, num_bits):
        var = var_offset + bit + 1
        lits.append(var if (base >> bit) & 1 else -var)
    return DnfTerm(lits)


def range_to_subcube_terms(lo: int, hi: int, num_bits: int,
                           var_offset: int = 0) -> List[DnfTerm]:
    """Lemma 4's 1-dimensional compilation: ``[lo, hi]`` as <= 2n disjoint
    terms over ``num_bits`` variables."""
    if lo > hi:
        raise InvalidParameterError("empty range")
    if lo < 0 or hi >= (1 << num_bits):
        raise InvalidParameterError("range endpoints out of universe")
    return [subcube_to_term(base, free, num_bits, var_offset)
            for base, free in aligned_subcubes(lo, hi)]


class MultiRange:
    """A d-dimensional range ``[lo_1, hi_1] x ... x [lo_d, hi_d]`` over
    ``({0,1}^bits_per_dim)^d``, presented as a structured set."""

    def __init__(self, intervals: Sequence[Tuple[int, int]],
                 bits_per_dim: int) -> None:
        if not intervals:
            raise InvalidParameterError("need at least one dimension")
        for lo, hi in intervals:
            if lo > hi:
                raise InvalidParameterError(f"empty interval [{lo}, {hi}]")
            if lo < 0 or hi >= (1 << bits_per_dim):
                raise InvalidParameterError(
                    f"interval [{lo}, {hi}] outside {bits_per_dim}-bit "
                    "universe")
        self.intervals = [(int(lo), int(hi)) for lo, hi in intervals]
        self.bits_per_dim = bits_per_dim
        self.dims = len(intervals)
        self.num_vars = bits_per_dim * self.dims

    # ------------------------------------------------------------------
    # Set semantics
    # ------------------------------------------------------------------

    def size(self) -> int:
        """Exact cardinality ``prod (hi - lo + 1)``."""
        out = 1
        for lo, hi in self.intervals:
            out *= hi - lo + 1
        return out

    def contains(self, x: int) -> bool:
        """Membership of a packed point (dimension 0 in the low bits)."""
        mask = (1 << self.bits_per_dim) - 1
        for lo, hi in self.intervals:
            coord = x & mask
            if not lo <= coord <= hi:
                return False
            x >>= self.bits_per_dim
        return True

    def pack(self, point: Sequence[int]) -> int:
        """Pack per-dimension coordinates into one element."""
        if len(point) != self.dims:
            raise InvalidParameterError("wrong dimensionality")
        out = 0
        for i, c in enumerate(point):
            out |= c << (i * self.bits_per_dim)
        return out

    # ------------------------------------------------------------------
    # Compilation (Lemma 4)
    # ------------------------------------------------------------------

    def term_count(self) -> int:
        """Number of DNF terms the compilation produces."""
        out = 1
        for lo, hi in self.intervals:
            out *= len(list(aligned_subcubes(lo, hi)))
        return out

    def iter_terms(self) -> Iterator[DnfTerm]:
        """Lazily yield the product DNF's terms (never materialises the
        ``(2n)^d`` list)."""
        per_dim = [
            [(base, free) for base, free in aligned_subcubes(lo, hi)]
            for lo, hi in self.intervals
        ]

        def rec(dim: int, lits: List[int]) -> Iterator[DnfTerm]:
            if dim == self.dims:
                yield DnfTerm(lits)
                return
            offset = dim * self.bits_per_dim
            for base, free in per_dim[dim]:
                term = subcube_to_term(base, free, self.bits_per_dim,
                                       offset)
                yield from rec(dim + 1, lits + list(term.literals))

        yield from rec(0, [])

    def to_dnf(self) -> DnfFormula:
        """Materialise the full product DNF (use ``iter_terms`` for large
        ``d``)."""
        return DnfFormula(self.num_vars, list(self.iter_terms()))

    def affine_pieces(self) -> Iterator[AffineSubspace]:
        """Product subcubes as affine subspaces, built dimension-wise so a
        piece costs O(n d) rather than going through term literals."""
        per_dim = [
            [(base, free) for base, free in aligned_subcubes(lo, hi)]
            for lo, hi in self.intervals
        ]

        def cube_space(base: int, free: int) -> AffineSubspace:
            origin = base
            basis = [1 << j for j in range(free)]
            return AffineSubspace(self.bits_per_dim, origin, basis)

        def rec(dim: int, chosen: List[AffineSubspace]
                ) -> Iterator[AffineSubspace]:
            if dim == self.dims:
                yield AffineSubspace.product(chosen)
                return
            for base, free in per_dim[dim]:
                yield from rec(dim + 1, chosen + [cube_space(base, free)])

        yield from rec(0, [])

    def __repr__(self) -> str:
        return (f"MultiRange({self.intervals}, "
                f"bits_per_dim={self.bits_per_dim})")
