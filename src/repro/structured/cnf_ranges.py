"""Observation 2: d-dimensional ranges as O(nd)-size CNF, and the CNF-route
F0 estimator.

A single comparison ``x >= a`` over ``n`` bits is the clause set

    for each i with a_i = 1:   (x_i  or  OR_{j > i, a_j = 0} x_j)

(first differing bit wins), and ``x <= b`` dually; a d-dimensional range is
the conjunction across per-dimension variable blocks -- ``O(nd)`` clauses
of width ``O(n)``.

Because the DNF compilation can blow up to ``n^d`` terms (Observation 1)
while this CNF stays linear, the paper asks whether a streaming algorithm
can work from the CNF side; :class:`StructuredF0MinimumCnf` realises the
paper's conditional answer -- FindMin over CNF items via the NP oracle
(Proposition 2), polynomial per item *given* the oracle, with the call
count metered.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.common.errors import InvalidParameterError
from repro.common.rng import RandomSource
from repro.common.stats import median
from repro.core.find_min import find_min_cnf
from repro.core.min_count import estimate_from_min_sketch
from repro.formulas.cnf import CnfFormula
from repro.hashing.toeplitz import ToeplitzHashFamily
from repro.sat.oracle import NpOracle
from repro.streaming.base import SketchParams
from repro.streaming.minimum import MinimumRow
from repro.structured.ranges import MultiRange


def _geq_clauses(a: int, num_bits: int, var_offset: int) -> List[List[int]]:
    """Clauses asserting ``x >= a`` over ``num_bits`` variables."""
    clauses = []
    for i in range(num_bits):
        if not (a >> i) & 1:
            continue
        clause = [var_offset + i + 1]
        clause.extend(var_offset + j + 1 for j in range(i + 1, num_bits)
                      if not (a >> j) & 1)
        clauses.append(clause)
    return clauses


def _leq_clauses(b: int, num_bits: int, var_offset: int) -> List[List[int]]:
    """Clauses asserting ``x <= b``."""
    clauses = []
    for i in range(num_bits):
        if (b >> i) & 1:
            continue
        clause = [-(var_offset + i + 1)]
        clause.extend(-(var_offset + j + 1) for j in range(i + 1, num_bits)
                      if (b >> j) & 1)
        clauses.append(clause)
    return clauses


def range_to_cnf_clauses(lo: int, hi: int, num_bits: int,
                         var_offset: int = 0) -> List[List[int]]:
    """``[lo, hi]`` as at most ``2 * num_bits`` clauses (Observation 2)."""
    if lo > hi:
        raise InvalidParameterError("empty range")
    if lo < 0 or hi >= (1 << num_bits):
        raise InvalidParameterError("range endpoints out of universe")
    return (_geq_clauses(lo, num_bits, var_offset)
            + _leq_clauses(hi, num_bits, var_offset))


def multirange_to_cnf(mrange: MultiRange) -> CnfFormula:
    """The d-dimensional conjunction: ``O(n d)`` clauses total."""
    clauses: List[List[int]] = []
    for dim, (lo, hi) in enumerate(mrange.intervals):
        clauses.extend(range_to_cnf_clauses(
            lo, hi, mrange.bits_per_dim, dim * mrange.bits_per_dim))
    return CnfFormula(mrange.num_vars, clauses)


class StructuredF0MinimumCnf:
    """Minimum-sketch F0 over a stream of CNF items through the NP oracle.

    Per item and repetition, FindMin/CNF costs ``O(Thresh * n)`` oracle
    calls; ``oracle_calls`` accumulates the total, which benchmark E13
    reports next to the DNF route's pure-polynomial cost.
    """

    def __init__(self, num_vars: int, params: SketchParams,
                 rng: RandomSource) -> None:
        self.num_vars = num_vars
        self.params = params
        self.oracle_calls = 0
        family = ToeplitzHashFamily(num_vars, 3 * num_vars)
        self.rows: List[MinimumRow] = [
            MinimumRow(family.sample(rng), params.thresh)
            for _ in range(params.repetitions)
        ]

    def process_cnf(self, formula: CnfFormula) -> None:
        if formula.num_vars != self.num_vars:
            raise InvalidParameterError("variable count mismatch")
        for row in self.rows:
            oracle = NpOracle(formula)
            for value in find_min_cnf(oracle, row.h, self.params.thresh):
                row.insert_value(value)
            self.oracle_calls += oracle.calls

    def estimate(self) -> float:
        return median([
            estimate_from_min_sketch(row.values(), self.params.thresh,
                                     row.h.out_bits)
            for row in self.rows
        ])
