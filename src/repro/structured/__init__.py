"""Structured set streams (Section 5): F0 over succinctly represented sets.

Each stream item is a *set* over ``{0,1}^n`` given in a succinct form --
a DNF formula, a d-dimensional range, a d-dimensional arithmetic
progression, or an affine space -- and the goal is ``|union of items|``
with per-item time polylogarithmic in the universe (polynomial in ``n``
and the representation size).

The unifying abstraction is :class:`StructuredSet`: anything that can
present itself as a union of affine subspaces (DNF terms are subcubes,
ranges compile to at most ``2n`` subcubes per dimension, progressions to
subcube/parity intersections, affine spaces to themselves).  The two
estimators -- :class:`StructuredF0Minimum` (Theorem 5's algorithm) and
:class:`StructuredF0Bucketing` (the alternative the paper notes) -- work
uniformly over the abstraction; the per-family theorems (6, 7, Corollary 1)
are instances.

:mod:`repro.structured.weighted` implements the weighted-#DNF-to-ranges
reduction, and :mod:`repro.structured.cnf_ranges` Observation 2's O(nd)
CNF compilation of ranges.
"""

from repro.structured.sets import AffineSet, DnfSet, SingletonSet, StructuredSet
from repro.structured.dnf_stream import (
    StructuredF0Bucketing,
    StructuredF0Minimum,
)
from repro.structured.ranges import MultiRange, range_to_subcube_terms
from repro.structured.progressions import MultiProgression
from repro.structured.affine_stream import affine_find_min
from repro.structured.cnf_ranges import (
    StructuredF0MinimumCnf,
    multirange_to_cnf,
    range_to_cnf_clauses,
)
from repro.structured.weighted import (
    weighted_dnf_count,
    weighted_dnf_to_ranges,
)
from repro.structured.delphic import (
    ApsEstimator,
    DelphicAffine,
    DelphicProgression,
    DelphicRange,
    DelphicSet,
)

__all__ = [
    "AffineSet",
    "ApsEstimator",
    "DelphicAffine",
    "DelphicProgression",
    "DelphicRange",
    "DelphicSet",
    "DnfSet",
    "MultiProgression",
    "MultiRange",
    "SingletonSet",
    "StructuredF0Bucketing",
    "StructuredF0Minimum",
    "StructuredF0MinimumCnf",
    "StructuredSet",
    "affine_find_min",
    "multirange_to_cnf",
    "range_to_cnf_clauses",
    "range_to_subcube_terms",
    "weighted_dnf_count",
    "weighted_dnf_to_ranges",
]
