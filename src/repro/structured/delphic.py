"""Delphic sets and the APS-Estimator (the paper's Remark 2).

The follow-up work the paper cites (Meel r) Vinodchandran r) Chakraborty,
*Estimating the Size of Union of Sets in Streaming Models*, PODS 2021)
defines the **Delphic family**: sets ``S`` supporting, in O(n) time,
(1) exact ``|S|``, (2) a uniform random member, (3) membership tests.
Multidimensional ranges, arithmetic progressions and affine spaces are all
Delphic (per-dimension arithmetic); general DNF sets are not (their size
is the very #DNF problem).

The **APS-Estimator** maintains a uniform sample of the union at an
adaptive rate ``p``: on arrival of ``S_i`` it discards buffered elements
of ``S_i`` (resampling them via the new set keeps uniformity), draws
``Binomial(|S_i|, p)`` fresh distinct members, and halves ``p`` whenever
the buffer exceeds its capacity.  ``|buffer| / p`` estimates the union
size with per-item time polynomial in ``n`` and ``log M`` -- removing the
``(2n)^d`` per-item factor of the Lemma 4 compilation route, at the price
of needing the stream length bound ``M`` up front (the trade-off Remark 2
spells out).  Benchmark E21 measures exactly that trade-off.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Protocol, Sequence, runtime_checkable

from repro.common.errors import InvalidParameterError
from repro.common.rng import RandomSource
from repro.gf2.affine import AffineSubspace
from repro.structured.progressions import MultiProgression
from repro.structured.ranges import MultiRange
from repro.structured.sets import AffineSet


@runtime_checkable
class DelphicSet(Protocol):
    """The three Delphic queries."""

    def size(self) -> int:
        """Exact cardinality."""
        ...

    def sample(self, rng: RandomSource) -> int:
        """A uniform random member."""
        ...

    def contains(self, x: int) -> bool:
        """Membership."""
        ...


class DelphicRange:
    """A :class:`MultiRange` with the Delphic interface (uniform sampling
    is per-dimension uniform integers)."""

    def __init__(self, mrange: MultiRange) -> None:
        self.mrange = mrange
        self.num_vars = mrange.num_vars

    def size(self) -> int:
        return self.mrange.size()

    def contains(self, x: int) -> bool:
        return self.mrange.contains(x)

    def sample(self, rng: RandomSource) -> int:
        point = [rng.randint(lo, hi) for lo, hi in self.mrange.intervals]
        return self.mrange.pack(point)


class DelphicProgression:
    """A :class:`MultiProgression` with the Delphic interface."""

    def __init__(self, mprog: MultiProgression) -> None:
        self.mprog = mprog
        self.num_vars = mprog.num_vars

    def size(self) -> int:
        return self.mprog.size()

    def contains(self, x: int) -> bool:
        return self.mprog.contains(x)

    def sample(self, rng: RandomSource) -> int:
        out = 0
        for i, (a, b, l) in enumerate(self.mprog.progressions):
            steps = ((b - a) >> l) + 1
            coord = a + (rng.randrange(steps) << l)
            out |= coord << (i * self.mprog.bits_per_dim)
        return out


class DelphicAffine:
    """An :class:`AffineSet` with the Delphic interface (uniform sampling
    is a uniform choice vector)."""

    def __init__(self, aset: AffineSet) -> None:
        if aset.is_empty:
            raise InvalidParameterError(
                "empty affine sets cannot be sampled; filter them out")
        self.aset = aset
        self.num_vars = aset.num_vars
        self._space: AffineSubspace = next(aset.affine_pieces())

    def size(self) -> int:
        return self.aset.size()

    def contains(self, x: int) -> bool:
        return self.aset.contains(x)

    def sample(self, rng: RandomSource) -> int:
        choice = rng.getrandbits(self._space.dimension) \
            if self._space.dimension else 0
        return self._space.element(choice)


class ApsEstimator:
    """The APS-Estimator over Delphic set streams.

    ``buffer_capacity`` defaults to the follow-up paper's
    ``O(eps^-2 log(M/delta))`` with a small constant suited to the bench
    scale; pass ``stream_bound`` (the known bound ``M`` on stream length
    the algorithm assumes) explicitly.
    """

    def __init__(self, eps: float, delta: float, stream_bound: int,
                 rng: RandomSource,
                 capacity_constant: float = 12.0) -> None:
        if eps <= 0 or not 0 < delta < 1:
            raise InvalidParameterError("need eps > 0 and delta in (0, 1)")
        if stream_bound < 1:
            raise InvalidParameterError("stream_bound must be >= 1")
        self.eps = eps
        self.delta = delta
        self.rng = rng
        self.capacity = max(8, math.ceil(
            capacity_constant / (eps ** 2)
            * math.log(max(2.0, stream_bound / delta))))
        self.sample_rate = 1.0
        self.buffer: set = set()
        self.items_seen = 0

    def process_set(self, item: DelphicSet) -> None:
        """One stream item: resample its footprint at the current rate."""
        self.items_seen += 1
        # Elements of the new set already in the buffer must be re-drawn
        # through the new set to keep the buffer a uniform p-sample of the
        # running union.
        self.buffer = {x for x in self.buffer if not item.contains(x)}
        size = item.size()
        # Level-jump: a set that alone would overflow the buffer forces
        # halvings anyway; taking them *before* drawing keeps the per-item
        # work O(capacity) instead of O(|S_i|) -- this is what makes the
        # estimator polynomial per item regardless of set cardinality.
        while self.sample_rate * size > 2 * self.capacity \
                and self.sample_rate > 0:
            self._halve()
        fresh = self._binomial(size, self.sample_rate)
        # Draw `fresh` *distinct* members: rejection over uniform samples
        # (fresh <= capacity << size in the operating regime, so the
        # expected number of rejections is small).
        drawn: set = set()
        while len(drawn) < fresh:
            drawn.add(item.sample(self.rng))
        self.buffer |= drawn
        while len(self.buffer) > self.capacity:
            self._halve()

    def process_stream(self, items: Iterable[DelphicSet]) -> None:
        for item in items:
            self.process_set(item)

    def _halve(self) -> None:
        self.sample_rate /= 2.0
        self.buffer = {x for x in self.buffer
                       if self.rng.getrandbits(1)}

    def _binomial(self, n: int, p: float) -> int:
        """Binomial(n, p) draw without materialising n coin flips: exact
        flips when n is small, a clamped normal approximation otherwise
        (n * p stays near the buffer capacity by construction, so the
        approximation error is far below the sketch's own variance)."""
        if p >= 1.0:
            return n
        if n <= 4096:
            return sum(1 for _ in range(n) if self.rng.random() < p)
        mean = n * p
        std = math.sqrt(n * p * (1.0 - p))
        draw = int(round(self.rng.gauss(mean, std)))
        return min(n, max(0, draw))

    def estimate(self) -> float:
        """``|buffer| / p``."""
        return len(self.buffer) / self.sample_rate
