"""Weighted #DNF via multidimensional ranges (Section 5).

Chakraborty-et-al-style reduction: variable ``x_i`` with weight
``rho(x_i) = k_i / 2^{m_i}`` becomes an ``m_i``-bit dimension; a term maps
``x_i -> [0, k_i - 1]``, ``not x_i -> [k_i, 2^{m_i} - 1]`` and an
unmentioned variable to the full ``[0, 2^{m_i} - 1]``.  Each term is then
one d-dimensional range (d = n), the formula a stream of such ranges, and

    W(phi) = F0(union of ranges) / 2^(sum_i m_i).

A hashing-based range-F0 estimator therefore yields a weighted-#DNF
estimator -- the connection the paper highlights as a route to the open
problem of hashing-based weighted DNF counting.  (The dimensions here have
*heterogeneous* widths; we embed each into the common width
``max_i m_i``, which preserves cardinalities by padding high bits with
fixed zeros.)
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Tuple

from repro.common.errors import InvalidParameterError
from repro.common.rng import RandomSource
from repro.formulas.dnf import DnfFormula
from repro.formulas.weights import WeightFunction
from repro.streaming.base import SketchParams
from repro.structured.dnf_stream import StructuredF0Minimum
from repro.structured.ranges import MultiRange


def _term_intervals(term, weights: WeightFunction,
                    num_vars: int) -> List[Tuple[int, int]]:
    intervals = []
    for v in range(1, num_vars + 1):
        k, m = weights.numerator_and_bits(v)
        if term.pos_mask >> (v - 1) & 1:
            intervals.append((0, k - 1))
        elif term.neg_mask >> (v - 1) & 1:
            intervals.append((k, (1 << m) - 1))
        else:
            intervals.append((0, (1 << m) - 1))
    return intervals


def weighted_dnf_to_ranges(formula: DnfFormula,
                           weights: WeightFunction) -> List[MultiRange]:
    """One d-dimensional range per (non-contradictory) term.

    All dimensions share width ``max_i m_i``; narrower weights embed with
    zero-padded high bits, which leaves every interval's cardinality --
    hence the F0 identity -- unchanged.
    """
    if formula.num_vars != weights.num_vars:
        raise InvalidParameterError("variable counts differ")
    n = formula.num_vars
    width = max(weights.numerator_and_bits(v)[1]
                for v in range(1, n + 1)) if n else 1
    ranges = []
    for term in formula.terms:
        if term.is_contradictory:
            continue
        intervals = _term_intervals(term, weights, n)
        ranges.append(MultiRange(intervals, bits_per_dim=width))
    return ranges


def weighted_total_bits(weights: WeightFunction) -> int:
    """The scaling exponent of the embedded universe: with all dimensions
    padded to width ``max m_i``, the universe has ``n * max m_i`` bits, but
    padded coordinates only realise ``2^{m_i}`` values -- the F0 identity
    divides by ``2^{sum m_i}`` exactly as in the paper."""
    return weights.total_bits()


def weighted_dnf_count(formula: DnfFormula, weights: WeightFunction,
                       params: SketchParams, rng: RandomSource) -> float:
    """(eps, delta)-estimate of ``W(phi)`` through the range-F0 pipeline."""
    ranges = weighted_dnf_to_ranges(formula, weights)
    if not ranges:
        return 0.0
    estimator = StructuredF0Minimum(ranges[0].num_vars, params, rng)
    estimator.process_stream(ranges)
    return estimator.estimate() / float(2 ** weights.total_bits())


def weighted_dnf_exact_via_ranges(formula: DnfFormula,
                                  weights: WeightFunction) -> Fraction:
    """Exact ``W(phi)`` by exactly counting the range union -- the test
    oracle for the reduction's correctness (small instances only)."""
    ranges = weighted_dnf_to_ranges(formula, weights)
    union: set = set()
    for r in ranges:
        for piece in r.affine_pieces():
            union.update(piece)
    return Fraction(len(union), 2 ** weights.total_bits())
