"""Multidimensional arithmetic progressions with power-of-two steps
(Corollary 1).

``[a, b, 2^l]`` is the set ``{a, a + 2^l, a + 2*2^l, ...} within [a, b]`` --
equivalently the range ``[a, b]`` intersected with "low ``l`` bits equal
``a``'s".  The low-bit constraint is affine, so each of the range's
aligned subcubes intersects it in an affine subspace; the piece count stays
``O(n)`` per dimension and the d-dimensional product works exactly as for
ranges.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.common.errors import InvalidParameterError
from repro.gf2.affine import AffineSubspace
from repro.structured.ranges import aligned_subcubes


class MultiProgression:
    """``[a_i, b_i, 2^{l_i}]`` per dimension, packed like MultiRange."""

    def __init__(self, progressions: Sequence[Tuple[int, int, int]],
                 bits_per_dim: int) -> None:
        """``progressions[i] = (a, b, l)`` meaning step ``2^l`` in
        ``[a, b]``."""
        if not progressions:
            raise InvalidParameterError("need at least one dimension")
        for a, b, l in progressions:
            if a > b:
                raise InvalidParameterError(f"empty progression [{a}, {b}]")
            if a < 0 or b >= (1 << bits_per_dim):
                raise InvalidParameterError("endpoints out of universe")
            if l < 0 or l > bits_per_dim:
                raise InvalidParameterError("step exponent out of range")
        self.progressions = [(int(a), int(b), int(l))
                             for a, b, l in progressions]
        self.bits_per_dim = bits_per_dim
        self.dims = len(progressions)
        self.num_vars = bits_per_dim * self.dims

    # ------------------------------------------------------------------
    # Set semantics
    # ------------------------------------------------------------------

    def size(self) -> int:
        """Exact cardinality: per dimension ``floor((b - a)/2^l) + 1``."""
        out = 1
        for a, b, l in self.progressions:
            out *= ((b - a) >> l) + 1
        return out

    def contains(self, x: int) -> bool:
        mask = (1 << self.bits_per_dim) - 1
        for a, b, l in self.progressions:
            coord = x & mask
            step = 1 << l
            if not (a <= coord <= b and (coord - a) % step == 0):
                return False
            x >>= self.bits_per_dim
        return True

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _dim_pieces(self, a: int, b: int, l: int) -> List[AffineSubspace]:
        """Aligned subcubes of ``[a, b]`` intersected with the low-bit
        congruence ``x = a (mod 2^l)``."""
        low_rows = [1 << j for j in range(l)]
        low_rhs = [(a >> j) & 1 for j in range(l)]
        pieces = []
        for base, free in aligned_subcubes(a, b):
            cube = AffineSubspace(self.bits_per_dim, base,
                                  [1 << j for j in range(free)])
            piece = cube.intersect(low_rows, low_rhs)
            if piece is not None:
                pieces.append(piece)
        return pieces

    def affine_pieces(self) -> Iterator[AffineSubspace]:
        per_dim = [self._dim_pieces(a, b, l)
                   for a, b, l in self.progressions]

        def rec(dim: int, chosen: List[AffineSubspace]
                ) -> Iterator[AffineSubspace]:
            if dim == self.dims:
                yield AffineSubspace.product(chosen)
                return
            for piece in per_dim[dim]:
                yield from rec(dim + 1, chosen + [piece])

        yield from rec(0, [])

    def __repr__(self) -> str:
        return (f"MultiProgression({self.progressions}, "
                f"bits_per_dim={self.bits_per_dim})")
