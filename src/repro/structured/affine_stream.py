"""Affine-space streams: AffineFindMin (Proposition 4) and Theorem 7.

An affine stream item ``(A, b)`` represents ``{x : A x = b}``.
AffineFindMin returns the ``t`` lexicographically smallest elements of
``h(Sol(<A, b>))`` in ``O(n^4 t)`` time by exactly the mechanism the paper
proves through prefix search on the stacked matrix ``D | A``: here the
image subspace's MSB-first echelon form plays the role of the Gaussian
eliminations, giving the same output.

Theorem 7's streaming algorithm is :class:`StructuredF0Minimum` applied to
:class:`repro.structured.sets.AffineSet` items; this module adds only the
standalone subroutine (and its brute-force-checkable contract).
"""

from __future__ import annotations

from typing import List

from repro.hashing.base import LinearHash
from repro.structured.sets import AffineSet


def affine_find_min(affine: AffineSet, h: LinearHash, t: int) -> List[int]:
    """The ``min(t, |h(Sol)|)`` lexicographically smallest hashed values of
    the affine set, ascending (Proposition 4)."""
    pieces = list(affine.affine_pieces())
    if not pieces:
        return []
    image = h.image_space(pieces[0])
    return image.smallest_elements(t)
