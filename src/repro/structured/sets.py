"""The StructuredSet abstraction and its basic implementations.

A structured set presents itself as a finite union of affine subspaces of
``{0,1}^num_vars`` (its *pieces*).  That single interface is what both
estimators need:

* Minimum sketch: the ``t`` smallest hash values of a piece come from
  ``h.image_space(piece).smallest_elements(t)``;
* Bucketing sketch: the piece's intersection with a hash cell is
  ``piece.intersect(h.prefix_constraints(m))``.

DNF terms are subcubes (special affine subspaces), so DNF sets are the
canonical instance; :class:`AffineSet` covers Section 5's affine-space
streams; ranges and progressions live in their own modules.
"""

from __future__ import annotations

from typing import Iterator, List, Protocol, runtime_checkable

from repro.common.errors import InvalidParameterError
from repro.formulas.dnf import DnfFormula
from repro.gf2.affine import AffineSubspace


@runtime_checkable
class StructuredSet(Protocol):
    """Anything presentable as a union of affine subspaces."""

    num_vars: int

    def affine_pieces(self) -> Iterator[AffineSubspace]:
        """Yield affine subspaces whose union is the set (pieces may
        overlap; estimators deduplicate through hashing)."""
        ...

    def contains(self, x: int) -> bool:
        """Membership test (ground truth for the test suite)."""
        ...


class DnfSet:
    """A DNF formula viewed as the set of its solutions (Theorem 5)."""

    def __init__(self, formula: DnfFormula) -> None:
        self.formula = formula
        self.num_vars = formula.num_vars

    def affine_pieces(self) -> Iterator[AffineSubspace]:
        for term in self.formula.terms:
            space = term.solution_space(self.num_vars)
            if space is not None:
                yield space

    def contains(self, x: int) -> bool:
        return self.formula.evaluate(x)

    def __repr__(self) -> str:
        return f"DnfSet({self.formula!r})"


class SingletonSet:
    """One element -- how a classic stream item enters the structured
    model (the paper's single-term-DNF embedding)."""

    def __init__(self, num_vars: int, element: int) -> None:
        if element >> num_vars:
            raise InvalidParameterError("element does not fit in num_vars")
        self.num_vars = num_vars
        self.element = element

    def affine_pieces(self) -> Iterator[AffineSubspace]:
        yield AffineSubspace.single_point(self.num_vars, self.element)

    def contains(self, x: int) -> bool:
        return x == self.element

    def __repr__(self) -> str:
        return f"SingletonSet({self.element:#x})"


class AffineSet:
    """The solution set of ``A x = b`` (Section 5, Proposition 4)."""

    def __init__(self, rows: List[int], rhs: List[int],
                 num_vars: int) -> None:
        if len(rows) != len(rhs):
            raise InvalidParameterError("rows and rhs lengths differ")
        self.num_vars = num_vars
        self.rows = list(rows)
        self.rhs = [b & 1 for b in rhs]
        self._space = AffineSubspace.solve(self.rows, self.rhs, num_vars)

    @property
    def is_empty(self) -> bool:
        return self._space is None

    def affine_pieces(self) -> Iterator[AffineSubspace]:
        if self._space is not None:
            yield self._space

    def contains(self, x: int) -> bool:
        return self._space is not None and self._space.contains(x)

    def size(self) -> int:
        """Exact cardinality (affine sets know their own size)."""
        return 0 if self._space is None else self._space.size()

    def __repr__(self) -> str:
        return (f"AffineSet(num_vars={self.num_vars}, "
                f"constraints={len(self.rows)})")
