"""F0 estimators over structured set streams (Theorem 5 and friends).

Both estimators consume :class:`repro.structured.sets.StructuredSet` items,
so one implementation serves DNF sets (Theorem 5), multidimensional ranges
(Theorem 6), arithmetic progressions (Corollary 1) and affine spaces
(Theorem 7); the per-item cost is ``O(pieces * poly(n) * Thresh)`` with
``pieces <= (2n)^d`` for d-dimensional items.

* :class:`StructuredF0Minimum` -- the algorithm in Theorem 5's proof:
  per item, FindMin the item's ``Thresh`` smallest hash values through the
  affine images and fold them into the running Minimum sketch.
* :class:`StructuredF0Bucketing` -- the alternative the paper notes after
  Theorem 5: per item, enumerate the item's elements inside the current
  hash cell (affine intersection), raising the level on overflow.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.rng import RandomSource
from repro.common.stats import median
from repro.core.min_count import estimate_from_min_sketch
from repro.hashing.base import LinearHash
from repro.hashing.toeplitz import ToeplitzHashFamily
from repro.streaming.base import SketchParams
from repro.streaming.minimum import MinimumRow
from repro.structured.sets import StructuredSet


class StructuredF0Minimum:
    """Minimum-sketch F0 over structured sets (Theorem 5).

    Space ``O(n/eps^2 log(1/delta))``: per repetition one ``3n``-bit hash
    and ``Thresh`` stored values.
    """

    def __init__(self, num_vars: int, params: SketchParams,
                 rng: RandomSource) -> None:
        self.num_vars = num_vars
        self.params = params
        family = ToeplitzHashFamily(num_vars, 3 * num_vars)
        self.rows: List[MinimumRow] = [
            MinimumRow(family.sample(rng), params.thresh)
            for _ in range(params.repetitions)
        ]

    def process_set(self, item: StructuredSet) -> None:
        """Fold one structured item into every repetition's sketch.

        The item's candidate values (Thresh smallest per affine piece)
        are gathered first and folded with one bulk
        :meth:`~repro.streaming.minimum.MinimumRow.insert_values` call
        per row -- the shared mergeable-sketch combine path -- rather
        than one heap update per value.
        """
        thresh = self.params.thresh
        for row in self.rows:
            candidates: List[int] = []
            for piece in item.affine_pieces():
                image = row.h.image_space(piece)
                candidates.extend(image.smallest_elements(thresh))
            row.insert_values(candidates)

    def process_stream(self, items: Iterable[StructuredSet]) -> None:
        for item in items:
            self.process_set(item)

    def merge(self, other: "StructuredF0Minimum") -> None:
        """Row-wise union with a sketch built from the same seeds (the
        structured analogue of the Section 4 combine)."""
        if len(other.rows) != len(self.rows):
            raise ValueError("cannot merge sketches of different widths")
        for mine, theirs in zip(self.rows, other.rows):
            mine.merge(theirs)

    def estimate(self) -> float:
        return median([
            estimate_from_min_sketch(row.values(), self.params.thresh,
                                     row.h.out_bits)
            for row in self.rows
        ])

    def space_bits(self) -> int:
        return sum(row.h.seed_bits + len(row.values()) * row.h.out_bits
                   for row in self.rows)


class _BucketRow:
    """One Bucketing repetition over structured items."""

    __slots__ = ("h", "thresh", "level", "bucket")

    def __init__(self, h: LinearHash, thresh: int) -> None:
        self.h = h
        self.thresh = thresh
        self.level = 0
        self.bucket: set = set()

    def process_set(self, item: StructuredSet) -> None:
        """Add the item's in-cell elements; on overflow raise the level,
        re-filter, and re-enumerate the item at the new level."""
        while True:
            constraints = self.h.prefix_constraints(self.level)
            rows = [mask for mask, _ in constraints]
            rhs = [bit for _, bit in constraints]
            overflowed = False
            for piece in item.affine_pieces():
                cell_piece = piece.intersect(rows, rhs)
                if cell_piece is None:
                    continue
                for x in cell_piece:
                    self.bucket.add(x)
                    if len(self.bucket) >= self.thresh \
                            and self.level < self.h.out_bits:
                        self._raise_level()
                        overflowed = True
                        break
                if overflowed:
                    break
            if not overflowed:
                return

    def _raise_level(self) -> None:
        self.level += 1
        self.bucket = {y for y in self.bucket
                       if self.h.cell_level(y) >= self.level}

    def estimate(self) -> float:
        return len(self.bucket) * float(1 << self.level)


class StructuredF0Bucketing:
    """Bucketing-sketch F0 over structured sets (paper's noted variant)."""

    def __init__(self, num_vars: int, params: SketchParams,
                 rng: RandomSource) -> None:
        self.num_vars = num_vars
        self.params = params
        family = ToeplitzHashFamily(num_vars, num_vars)
        self.rows: List[_BucketRow] = [
            _BucketRow(family.sample(rng), params.thresh)
            for _ in range(params.repetitions)
        ]

    def process_set(self, item: StructuredSet) -> None:
        for row in self.rows:
            row.process_set(item)

    def process_stream(self, items: Iterable[StructuredSet]) -> None:
        for item in items:
            self.process_set(item)

    def estimate(self) -> float:
        return median([row.estimate() for row in self.rows])

    def space_bits(self) -> int:
        return sum(row.h.seed_bits + len(row.bucket) * self.num_vars
                   for row in self.rows)
