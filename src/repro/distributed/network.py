"""Bit-accurate communication accounting for the simulated network.

The paper's Section 4 claims are about *communicated bits*, so the
simulation's single obligation is to meter them faithfully.  Every protocol
charges a :class:`BitChannel` for each logical message:

* broadcasting a hash function costs its ``seed_bits`` (or, under the
  conventional shared-randomness assumption the paper's accounting uses,
  one ``SEED_BITS`` PRG seed per protocol run);
* a hashed value costs its bit-width; a level in ``[0, n]`` costs
  ``ceil(log2(n+1))`` bits; a compressed element fingerprint costs the
  fingerprint width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Size of a PRG seed under the shared-randomness convention.
SEED_BITS = 128


def level_bits(universe_bits: int) -> int:
    """Bits to transmit a level in ``[0, universe_bits]``."""
    return max(1, math.ceil(math.log2(universe_bits + 1)))


class BitChannel:
    """Upload/download meters between the sites and the coordinator."""

    def __init__(self) -> None:
        self.broadcast_bits = 0  # Coordinator -> sites.
        self.upload_bits = 0     # Sites -> coordinator.

    def broadcast(self, bits: int, num_sites: int) -> None:
        """Charge a coordinator-to-all-sites message."""
        if bits < 0 or num_sites < 0:
            raise ValueError("bits and num_sites must be non-negative")
        self.broadcast_bits += bits * num_sites

    def upload(self, bits: int) -> None:
        """Charge one site-to-coordinator message."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        self.upload_bits += bits

    @property
    def total_bits(self) -> int:
        return self.broadcast_bits + self.upload_bits


@dataclass
class DistributedResult:
    """Outcome of one distributed counting run."""

    estimate: float
    total_bits: int
    broadcast_bits: int
    upload_bits: int
    num_sites: int
    #: Extra per-protocol diagnostics (e.g. chosen levels).
    details: dict = field(default_factory=dict)
