"""Partitioning a DNF's terms across sites.

Distributed DNF counting assumes the input formula's terms are split among
``k`` sites; these helpers produce the standard splits used by the
benchmarks (round-robin for balance, random for adversarial-ish skew).
"""

from __future__ import annotations

from typing import List

from repro.common.errors import InvalidParameterError
from repro.common.rng import RandomSource
from repro.formulas.dnf import DnfFormula


def partition_round_robin(formula: DnfFormula,
                          num_sites: int) -> List[DnfFormula]:
    """Deal terms to sites like cards; every site gets the same num_vars."""
    if num_sites < 1:
        raise InvalidParameterError("need at least one site")
    buckets: List[List] = [[] for _ in range(num_sites)]
    for idx, term in enumerate(formula.terms):
        buckets[idx % num_sites].append(term)
    return [DnfFormula(formula.num_vars, b) for b in buckets]


def partition_random(formula: DnfFormula, num_sites: int,
                     rng: RandomSource) -> List[DnfFormula]:
    """Assign each term to a uniformly random site (sites may be empty)."""
    if num_sites < 1:
        raise InvalidParameterError("need at least one site")
    buckets: List[List] = [[] for _ in range(num_sites)]
    for term in formula.terms:
        buckets[rng.randrange(num_sites)].append(term)
    return [DnfFormula(formula.num_vars, b) for b in buckets]
