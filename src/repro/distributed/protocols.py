"""The three distributed DNF counting protocols (Section 4).

Each protocol follows the same shape: the coordinator establishes hash
functions (under ``shared_randomness=True`` -- the accounting convention of
the paper -- that costs one PRG seed; otherwise the full descriptions are
charged), each site runs the relevant per-formula subroutine on its
sub-DNF in polynomial time, uploads a compact message, and the coordinator
combines messages exactly as the centralized algorithm would.

Sites hold DNF subformulas, so all per-site computation uses the
polynomial-time paths (BoundedSAT/DNF, FindMin/DNF, affine max-trail-zero);
the Estimation protocol's s-wise hashes are the one exception, handled by
the documented enumeration substitute.  Site oracles are built through
:func:`repro.sat.oracle.oracle_for` -- the same front door every other
oracle consumer uses -- so the backend registry governs distributed sites
exactly as it governs the centralized counters (DNF sites resolve to the
enumeration substitute; a future CNF-site protocol would inherit
``--oracle`` selection for free).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.common.errors import InvalidParameterError
from repro.common.rng import RandomSource
from repro.common.stats import median
from repro.core.find_min import find_min_dnf
from repro.core.fm_count import _max_level_dnf
from repro.core.min_count import estimate_from_min_sketch
from repro.core.recipe import bucketing_sketch_from_formula
from repro.distributed.network import (
    SEED_BITS,
    BitChannel,
    DistributedResult,
    level_bits,
)
from repro.formulas.dnf import DnfFormula
from repro.hashing.kwise import KWiseHashFamily
from repro.hashing.toeplitz import ToeplitzHashFamily
from repro.hashing.xor import XorHashFamily
from repro.sat.oracle import oracle_for
from repro.streaming.base import SketchParams
from repro.streaming.bucketing import BucketingRow
from repro.streaming.estimation import EstimationRow, independence_for_eps
from repro.streaming.flajolet_martin import FlajoletMartinF0
from repro.streaming.minimum import MinimumRow


def _check_sites(site_formulas: Sequence[DnfFormula]) -> int:
    if not site_formulas:
        raise InvalidParameterError("need at least one site")
    n = site_formulas[0].num_vars
    if any(f.num_vars != n for f in site_formulas):
        raise InvalidParameterError("sites must share the variable set")
    return n


def _charge_hash_setup(channel: BitChannel, num_sites: int,
                       description_bits: int,
                       shared_randomness: bool) -> None:
    if shared_randomness:
        channel.broadcast(SEED_BITS, num_sites)
    else:
        channel.broadcast(description_bits, num_sites)


# ----------------------------------------------------------------------
# Bucketing protocol
# ----------------------------------------------------------------------

def fingerprint_bits(num_sites: int, params: SketchParams) -> int:
    """Width of the compressing fingerprint ``G``:
    ``O(log(k * Thresh * t / delta))`` so that all shipped elements get
    distinct fingerprints except with probability ``delta/2``."""
    shipped = num_sites * params.thresh * params.repetitions
    return max(8, math.ceil(2 * math.log2(max(2, shipped))
                            + math.log2(1.0 / params.delta)) + 1)


def distributed_bucketing(site_formulas: Sequence[DnfFormula],
                          params: SketchParams, rng: RandomSource,
                          shared_randomness: bool = True
                          ) -> DistributedResult:
    """Sites ship compressed cell contents; the coordinator replays
    ApproxMC's level logic on the union."""
    n = _check_sites(site_formulas)
    k = len(site_formulas)
    thresh = params.thresh
    reps = params.repetitions
    channel = BitChannel()

    family = ToeplitzHashFamily(n, n)
    hashes = [family.sample(rng) for _ in range(reps)]
    g_bits = fingerprint_bits(k, params)
    g = XorHashFamily(n, g_bits).sample(rng)
    description = sum(h.seed_bits for h in hashes) + g.seed_bits
    _charge_hash_setup(channel, k, description, shared_randomness)

    tuple_bits = g_bits + level_bits(n)
    raw_estimates: List[float] = []
    chosen_levels: List[int] = []
    for i in range(reps):
        h = hashes[i]
        # Site messages: the site's sketch level plus one (fingerprint,
        # cell level) tuple per element of its final cell.  The
        # coordinator replays the streaming combine -- BucketingRow.merge
        # over fingerprint space -- starting from the deepest site level
        # and raising while the union cell violates ``< Thresh``.
        coordinator = BucketingRow(None, thresh, out_bits=n)
        for formula in site_formulas:
            cell, site_level = bucketing_sketch_from_formula(
                formula, h, thresh)
            message = [(g.value(x), h.cell_level(x)) for x in cell]
            channel.upload(len(message) * tuple_bits + level_bits(n))
            coordinator.merge(BucketingRow.from_levelled(
                message, thresh, out_bits=n, level=site_level))
        raw_estimates.append(coordinator.estimate())
        chosen_levels.append(coordinator.level)

    return DistributedResult(
        estimate=median(raw_estimates),
        total_bits=channel.total_bits,
        broadcast_bits=channel.broadcast_bits,
        upload_bits=channel.upload_bits,
        num_sites=k,
        details={"levels": chosen_levels},
    )


# ----------------------------------------------------------------------
# Minimum protocol
# ----------------------------------------------------------------------

def distributed_minimum(site_formulas: Sequence[DnfFormula],
                        params: SketchParams, rng: RandomSource,
                        shared_randomness: bool = True
                        ) -> DistributedResult:
    """Sites ship their FindMin sketches (Thresh values of 3n bits each);
    the coordinator keeps the Thresh smallest of the union."""
    n = _check_sites(site_formulas)
    k = len(site_formulas)
    thresh = params.thresh
    reps = params.repetitions
    channel = BitChannel()

    family = ToeplitzHashFamily(n, 3 * n)
    hashes = [family.sample(rng) for _ in range(reps)]
    description = sum(h.seed_bits for h in hashes)
    _charge_hash_setup(channel, k, description, shared_randomness)

    value_bits = 3 * n
    raw_estimates: List[float] = []
    for i in range(reps):
        h = hashes[i]
        # Coordinator: one streaming row fed with each site's sketch via
        # the bulk path -- a single dedupe + partial-select per message
        # instead of O(Thresh log Thresh) heap churn per site.
        coordinator = MinimumRow(h, thresh)
        for formula in site_formulas:
            values = find_min_dnf(formula, h, thresh)
            channel.upload(len(values) * value_bits)
            coordinator.insert_values(values)
        raw_estimates.append(
            estimate_from_min_sketch(coordinator.values(), thresh,
                                     h.out_bits))

    return DistributedResult(
        estimate=median(raw_estimates),
        total_bits=channel.total_bits,
        broadcast_bits=channel.broadcast_bits,
        upload_bits=channel.upload_bits,
        num_sites=k,
    )


# ----------------------------------------------------------------------
# Estimation protocol
# ----------------------------------------------------------------------

def distributed_estimation(site_formulas: Sequence[DnfFormula],
                           params: SketchParams, rng: RandomSource,
                           shared_randomness: bool = True,
                           fm_repetitions: int = 9) -> DistributedResult:
    """Sites ship max-trail-zero levels per hash; the coordinator takes
    entrywise maxima (the sketch combine) and applies the Lemma 3
    estimator, with the coarse ``r`` from a distributed FlajoletMartin
    round (linear hashes, polynomial per site)."""
    n = _check_sites(site_formulas)
    k = len(site_formulas)
    thresh = params.thresh
    reps = params.repetitions
    channel = BitChannel()

    s = independence_for_eps(params.eps)
    family = KWiseHashFamily(n, s)
    grid = [[family.sample(rng) for _ in range(thresh)]
            for _ in range(reps)]
    fm_family = XorHashFamily(n, n)
    fm_hashes = [fm_family.sample(rng) for _ in range(fm_repetitions)]
    description = reps * thresh * s * n \
        + sum(h.seed_bits for h in fm_hashes)
    _charge_hash_setup(channel, k, description, shared_randomness)

    lb = level_bits(n)
    # FlajoletMartin round: each site sends its max level per FM hash;
    # the coordinator combines with the FM sketch's entry-wise-max rule.
    fm_levels = [-1] * fm_repetitions
    for formula in site_formulas:
        site_levels = []
        for h in fm_hashes:
            site_levels.append(_max_level_dnf(formula, h))
            channel.upload(lb)
        fm_levels = FlajoletMartinF0.merge_levels(fm_levels, site_levels)
    coarse = median(fm_levels)
    if coarse < 0:
        return DistributedResult(
            estimate=0.0, total_bits=channel.total_bits,
            broadcast_bits=channel.broadcast_bits,
            upload_bits=channel.upload_bits, num_sites=k,
            details={"r": None})
    r = max(0, min(int(coarse) + 3, n))

    # Main round: sites send S[i, j, site] as one EstimationRow per
    # repetition; the coordinator folds them with the sketch combine
    # (entry-wise max via EstimationRow.merge).
    combined = [EstimationRow(grid[i]) for i in range(reps)]
    for formula in site_formulas:
        oracle = oracle_for(formula, polynomial_hashes=True)
        for i in range(reps):
            site_row = EstimationRow(grid[i])
            for j in range(thresh):
                h = grid[i][j]
                site_row.maxima[j] = max(
                    (h.trail_zeros(z) for z in oracle.solutions),
                    default=0)
                channel.upload(lb)
            combined[i].merge(site_row)

    raw_estimates = [row.estimate(r) for row in combined]
    return DistributedResult(
        estimate=median(raw_estimates),
        total_bits=channel.total_bits,
        broadcast_bits=channel.broadcast_bits,
        upload_bits=channel.upload_bits,
        num_sites=k,
        details={"r": r},
    )
