"""The three distributed DNF counting protocols (Section 4).

Each protocol follows the same shape: the coordinator establishes hash
functions (under ``shared_randomness=True`` -- the accounting convention of
the paper -- that costs one PRG seed; otherwise the full descriptions are
charged), each site runs the relevant per-formula subroutine on its
sub-DNF in polynomial time, uploads a compact message, and the coordinator
combines messages exactly as the centralized algorithm would.

Sites hold DNF subformulas, so all per-site computation uses the
polynomial-time paths (BoundedSAT/DNF, FindMin/DNF, affine max-trail-zero);
the Estimation protocol's s-wise hashes are the one exception, handled by
the documented enumeration substitute.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set, Tuple

from repro.common.errors import InvalidParameterError
from repro.common.rng import RandomSource
from repro.common.stats import median
from repro.core.est_count import estimate_from_levels
from repro.core.find_min import find_min_dnf
from repro.core.fm_count import _max_level_dnf
from repro.core.min_count import estimate_from_min_sketch
from repro.core.recipe import bucketing_sketch_from_formula
from repro.distributed.network import (
    SEED_BITS,
    BitChannel,
    DistributedResult,
    level_bits,
)
from repro.formulas.dnf import DnfFormula
from repro.hashing.kwise import KWiseHashFamily
from repro.hashing.toeplitz import ToeplitzHashFamily
from repro.hashing.xor import XorHashFamily
from repro.sat.oracle import EnumerationOracle
from repro.streaming.base import SketchParams
from repro.streaming.estimation import independence_for_eps


def _check_sites(site_formulas: Sequence[DnfFormula]) -> int:
    if not site_formulas:
        raise InvalidParameterError("need at least one site")
    n = site_formulas[0].num_vars
    if any(f.num_vars != n for f in site_formulas):
        raise InvalidParameterError("sites must share the variable set")
    return n


def _charge_hash_setup(channel: BitChannel, num_sites: int,
                       description_bits: int,
                       shared_randomness: bool) -> None:
    if shared_randomness:
        channel.broadcast(SEED_BITS, num_sites)
    else:
        channel.broadcast(description_bits, num_sites)


# ----------------------------------------------------------------------
# Bucketing protocol
# ----------------------------------------------------------------------

def fingerprint_bits(num_sites: int, params: SketchParams) -> int:
    """Width of the compressing fingerprint ``G``:
    ``O(log(k * Thresh * t / delta))`` so that all shipped elements get
    distinct fingerprints except with probability ``delta/2``."""
    shipped = num_sites * params.thresh * params.repetitions
    return max(8, math.ceil(2 * math.log2(max(2, shipped))
                            + math.log2(1.0 / params.delta)) + 1)


def distributed_bucketing(site_formulas: Sequence[DnfFormula],
                          params: SketchParams, rng: RandomSource,
                          shared_randomness: bool = True
                          ) -> DistributedResult:
    """Sites ship compressed cell contents; the coordinator replays
    ApproxMC's level logic on the union."""
    n = _check_sites(site_formulas)
    k = len(site_formulas)
    thresh = params.thresh
    reps = params.repetitions
    channel = BitChannel()

    family = ToeplitzHashFamily(n, n)
    hashes = [family.sample(rng) for _ in range(reps)]
    g_bits = fingerprint_bits(k, params)
    g = XorHashFamily(n, g_bits).sample(rng)
    description = sum(h.seed_bits for h in hashes) + g.seed_bits
    _charge_hash_setup(channel, k, description, shared_randomness)

    tuple_bits = g_bits + level_bits(n)
    raw_estimates: List[float] = []
    chosen_levels: List[int] = []
    for i in range(reps):
        h = hashes[i]
        # Site messages: (fingerprint, cell level) per element of the
        # site's final cell.
        per_site: List[List[Tuple[int, int]]] = []
        for formula in site_formulas:
            cell, _level = bucketing_sketch_from_formula(formula, h, thresh)
            message = [(g.value(x), h.cell_level(x)) for x in cell]
            channel.upload(len(message) * tuple_bits)
            per_site.append(message)
        # Coordinator: raise the level until the union cell is small.
        level = max((min((lv for _fp, lv in msg), default=0)
                     for msg in per_site), default=0)
        while True:
            distinct: Set[int] = set()
            for msg in per_site:
                distinct.update(fp for fp, lv in msg if lv >= level)
            if len(distinct) < thresh or level >= n:
                break
            level += 1
        raw_estimates.append(len(distinct) * float(1 << level))
        chosen_levels.append(level)

    return DistributedResult(
        estimate=median(raw_estimates),
        total_bits=channel.total_bits,
        broadcast_bits=channel.broadcast_bits,
        upload_bits=channel.upload_bits,
        num_sites=k,
        details={"levels": chosen_levels},
    )


# ----------------------------------------------------------------------
# Minimum protocol
# ----------------------------------------------------------------------

def distributed_minimum(site_formulas: Sequence[DnfFormula],
                        params: SketchParams, rng: RandomSource,
                        shared_randomness: bool = True
                        ) -> DistributedResult:
    """Sites ship their FindMin sketches (Thresh values of 3n bits each);
    the coordinator keeps the Thresh smallest of the union."""
    n = _check_sites(site_formulas)
    k = len(site_formulas)
    thresh = params.thresh
    reps = params.repetitions
    channel = BitChannel()

    family = ToeplitzHashFamily(n, 3 * n)
    hashes = [family.sample(rng) for _ in range(reps)]
    description = sum(h.seed_bits for h in hashes)
    _charge_hash_setup(channel, k, description, shared_randomness)

    value_bits = 3 * n
    raw_estimates: List[float] = []
    for i in range(reps):
        h = hashes[i]
        merged: Set[int] = set()
        for formula in site_formulas:
            values = find_min_dnf(formula, h, thresh)
            channel.upload(len(values) * value_bits)
            merged.update(values)
        kept = sorted(merged)[:thresh]
        raw_estimates.append(
            estimate_from_min_sketch(kept, thresh, h.out_bits))

    return DistributedResult(
        estimate=median(raw_estimates),
        total_bits=channel.total_bits,
        broadcast_bits=channel.broadcast_bits,
        upload_bits=channel.upload_bits,
        num_sites=k,
    )


# ----------------------------------------------------------------------
# Estimation protocol
# ----------------------------------------------------------------------

def distributed_estimation(site_formulas: Sequence[DnfFormula],
                           params: SketchParams, rng: RandomSource,
                           shared_randomness: bool = True,
                           fm_repetitions: int = 9) -> DistributedResult:
    """Sites ship max-trail-zero levels per hash; the coordinator takes
    entrywise maxima (the sketch combine) and applies the Lemma 3
    estimator, with the coarse ``r`` from a distributed FlajoletMartin
    round (linear hashes, polynomial per site)."""
    n = _check_sites(site_formulas)
    k = len(site_formulas)
    thresh = params.thresh
    reps = params.repetitions
    channel = BitChannel()

    s = independence_for_eps(params.eps)
    family = KWiseHashFamily(n, s)
    grid = [[family.sample(rng) for _ in range(thresh)]
            for _ in range(reps)]
    fm_family = XorHashFamily(n, n)
    fm_hashes = [fm_family.sample(rng) for _ in range(fm_repetitions)]
    description = reps * thresh * s * n \
        + sum(h.seed_bits for h in fm_hashes)
    _charge_hash_setup(channel, k, description, shared_randomness)

    lb = level_bits(n)
    # FlajoletMartin round: each site sends its max level per FM hash.
    fm_levels = [-1] * fm_repetitions
    for formula in site_formulas:
        for j, h in enumerate(fm_hashes):
            level = _max_level_dnf(formula, h)
            channel.upload(lb)
            fm_levels[j] = max(fm_levels[j], level)
    coarse = median(fm_levels)
    if coarse < 0:
        return DistributedResult(
            estimate=0.0, total_bits=channel.total_bits,
            broadcast_bits=channel.broadcast_bits,
            upload_bits=channel.upload_bits, num_sites=k,
            details={"r": None})
    r = max(0, min(int(coarse) + 3, n))

    # Main round: sites send S[i, j, site]; coordinator takes maxima.
    oracles: Dict[int, EnumerationOracle] = {}
    maxima = [[0] * thresh for _ in range(reps)]
    for site_idx, formula in enumerate(site_formulas):
        oracle = EnumerationOracle.from_dnf(formula)
        oracles[site_idx] = oracle
        for i in range(reps):
            for j in range(thresh):
                h = grid[i][j]
                level = max((h.trail_zeros(z) for z in oracle.solutions),
                            default=0)
                channel.upload(lb)
                maxima[i][j] = max(maxima[i][j], level)

    raw_estimates = [estimate_from_levels(maxima[i], r)
                     for i in range(reps)]
    return DistributedResult(
        estimate=median(raw_estimates),
        total_bits=channel.total_bits,
        broadcast_bits=channel.broadcast_bits,
        upload_bits=channel.upload_bits,
        num_sites=k,
        details={"r": r},
    )
