"""Distributed DNF counting (Section 4).

``k`` sites each hold a sub-DNF ``phi_j`` (a subset of the terms); a
coordinator must output an ``(eps, delta)`` estimate of ``|Sol(phi_1 or ...
or phi_k)|`` while minimising communicated bits.  The paper transplants all
three transformed counters into Cormode et al.'s distributed functional
monitoring model:

* :func:`distributed_bucketing` -- sites ship compressed cell contents
  ``(G(x), level)``; cost ``O~(k (n + 1/eps^2) log(1/delta))``.
* :func:`distributed_minimum` -- sites ship FindMin sketches; cost
  ``O(k n / eps^2 log(1/delta))``.
* :func:`distributed_estimation` -- sites ship max-trail-zero levels; cost
  ``O~(k (n + 1/eps^2) log(1/delta))``.

Every message is metered through :class:`BitChannel` so benchmark E10 can
measure the claimed scalings, and :mod:`repro.distributed.lower_bound`
builds the F0-reduction instances behind the ``Omega(k/eps^2)`` bound.

Deployment-shaped counterparts live alongside the simulations:
:class:`SketchStoreCoordinator` runs the combine against a live store or
service, and :mod:`repro.distributed.cluster` scales that to several
service nodes with consistent hashing, R-way replication,
merge-on-read fail-over (:class:`ClusterClient` /
:class:`ClusterRouter`) and topology-change frame streaming
(:func:`rebalance`, which moves only the frames whose ring ownership
changed).
"""

from repro.distributed.cluster import (
    ClusterClient,
    ClusterError,
    ClusterRouter,
    HashRing,
    RebalanceMove,
    plan_rebalance,
    rebalance,
)
from repro.distributed.network import BitChannel, DistributedResult
from repro.distributed.partition import (
    partition_random,
    partition_round_robin,
)
from repro.distributed.protocols import (
    distributed_bucketing,
    distributed_estimation,
    distributed_minimum,
)
from repro.distributed.lower_bound import f0_items_to_site_formulas
from repro.distributed.store_coordinator import SketchStoreCoordinator

__all__ = [
    "BitChannel",
    "ClusterClient",
    "ClusterError",
    "ClusterRouter",
    "DistributedResult",
    "HashRing",
    "RebalanceMove",
    "SketchStoreCoordinator",
    "plan_rebalance",
    "rebalance",
    "distributed_bucketing",
    "distributed_estimation",
    "distributed_minimum",
    "f0_items_to_site_formulas",
    "partition_random",
    "partition_round_robin",
]
