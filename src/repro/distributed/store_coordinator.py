"""The Section-4 coordinator combine over a *live* sketch target.

The protocols in :mod:`repro.distributed.protocols` simulate one-shot
message rounds with bit-metered channels -- faithful to the paper's
accounting, but every sketch dies with the simulation.  This module is
the deployment-shaped counterpart: a coordinator whose combine step is
merge-on-put against a durable target -- an in-process
:class:`~repro.store.store.SketchStore`, a remote F0 service through
:class:`~repro.service.client.ServiceClient`, or a whole replicated
cluster through :class:`~repro.distributed.cluster.ClusterClient`
(same upload/push/estimate surface, so the dispatch below does not
care which).

The flow mirrors the paper exactly.  The coordinator establishes the
hash functions (here: builds one prototype sketch, whose seeds every
site must share), each site ingests its local sub-stream into a
replica, and uploads it; the target's per-sketch locking makes
concurrent site uploads serialize, and set semantics make retries
idempotent.  Unlike the simulation, sites may keep uploading forever
and anyone may query between rounds -- the "ingest now, query later"
shape the ROADMAP's service north star asks for.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Optional, Union

from repro.service.client import ServiceClient
from repro.store.store import SketchStore
from repro.streaming.base import F0Sketch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distributed.cluster import ClusterClient

#: Anything a coordinator can combine into.
StoreTarget = Union[SketchStore, ServiceClient, "ClusterClient"]


class SketchStoreCoordinator:
    """A distributed-F0 coordinator whose state lives in a store.

    Args:
        target: an in-process :class:`SketchStore`, a
            :class:`ServiceClient` pointed at a running F0 service, or
            a :class:`~repro.distributed.cluster.ClusterClient` over
            several of them.
        name: the sketch name the protocol runs under.
        prototype: the freshly built (empty) sketch fixing the hash
            seeds for every site.  It is registered at the target
            (create-or-replace) and kept locally only for
            :meth:`replica`.
        ttl: optional expiry (seconds since last mutation) for
            in-process stores.

    Raises:
        ReproError: the target rejects the registration.
    """

    def __init__(self, target: StoreTarget, name: str,
                 prototype: F0Sketch,
                 ttl: Optional[float] = None) -> None:
        self.target = target
        self.name = name
        self._prototype = copy.deepcopy(prototype)
        if isinstance(target, SketchStore):
            target.put(name, prototype, ttl=ttl)
        else:
            target.upload(name, prototype)

    def replica(self) -> F0Sketch:
        """A fresh empty sketch with the protocol's hash seeds -- what
        the coordinator hands each site (the paper's shared-randomness
        hash establishment)."""
        return copy.deepcopy(self._prototype)

    def submit(self, site_sketch: F0Sketch) -> None:
        """One site's upload: merge-on-put into the named entry.

        Safe to call concurrently from many sites (per-sketch locking
        at the target) and safe to retry (set semantics).
        """
        if isinstance(self.target, SketchStore):
            self.target.merge_into(self.name, site_sketch)
        else:
            self.target.push(self.name, site_sketch)

    def estimate(self) -> float:
        """The combined estimate over everything submitted so far."""
        return self.target.estimate(self.name)
