"""Multi-node sharding for the F0 service: Section 4 as a topology.

The paper's distributed protocols (Section 4) work because the sketches
are *mergeable*: the combine of any partition of a stream equals the
sketch of the whole stream.  This module turns that algebra into a
serving topology over several independent F0 service nodes:

* :class:`HashRing` -- deterministic consistent hashing (``hashlib``
  based, so every client in every process agrees) with virtual nodes,
  mapping each sketch name to an ordered replica set;
* :class:`ClusterClient` -- a drop-in ``ServiceClient``-shaped client
  that writes every mutation to all ``replication`` replicas of a name
  and answers reads by *merge-on-read*: fetch each live replica's
  sketch, merge, estimate.  A dead node is simply skipped -- set
  semantics mean the merged view over any non-empty subset of in-sync
  replicas is exact, so reads survive node failure with no repair
  protocol;
* :class:`ClusterRouter` -- the same ``handle(method, path, body)``
  contract as :class:`repro.service.router.Router`, routing onto a
  :class:`ClusterClient` instead of a local store.  Serve it with any
  registered front end and the cluster gains a single-URL gateway.

Writes are applied to every replica synchronously and in the same
order per client, so replicas of a name hold bit-identical sketches
while all nodes are up; after a node dies, the survivors still hold
the full union (every write reached them too), which is why fail-over
reads return *bit-identical* estimates, not approximations of them.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import urllib.parse
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.errors import ReproError
from repro.service.client import ServiceClient, ServiceError
from repro.service.router import (
    SAFE_NAME_RE,
    Response,
    RouteError,
    split_frames,
)
from repro.store.serialize import StoreFormatError, dumps, loads_sketch
from repro.streaming.base import F0Sketch

#: Virtual nodes per physical node -- enough that a 2..8-node ring
#: spreads names within a few percent of even.
DEFAULT_VNODES = 64

#: Replicas each sketch name is written to (capped at the node count).
DEFAULT_REPLICATION = 2


class ClusterError(ReproError):
    """No live replica could serve the operation."""


def _ring_hash(data: str) -> int:
    """A 64-bit deterministic position on the ring.

    ``hashlib`` rather than :func:`hash`: Python randomises string
    hashes per process, and the whole point of consistent hashing is
    that *every* client, in every process, on every run, routes a name
    to the same replica set.
    """
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    Args:
        nodes: the physical node identifiers (base URLs, host:port
            strings -- anything hashable as text).  Order does not
            matter; the ring layout depends only on the names.
        vnodes: virtual nodes per physical node.  More vnodes = more
            even key spread at the cost of a larger (still tiny) ring.

    Raises:
        ReproError: no nodes, duplicate nodes, or vnodes < 1.
    """

    def __init__(self, nodes: Sequence[str],
                 vnodes: int = DEFAULT_VNODES) -> None:
        if not nodes:
            raise ReproError("a hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ReproError("duplicate node in hash ring")
        if vnodes < 1:
            raise ReproError("vnodes must be >= 1")
        self.nodes = list(nodes)
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for i in range(vnodes):
                points.append((_ring_hash(f"{node}#{i}"), node))
        points.sort()
        self._points = [h for h, _ in points]
        self._owners = [n for _, n in points]

    def nodes_for(self, key: str, count: int = 1) -> List[str]:
        """The first ``count`` *distinct* nodes clockwise from ``key``.

        The returned order is the replica preference order: stable for
        a fixed ring, and mostly stable under node addition/removal
        (only keys adjacent to the moved vnodes re-route -- the
        consistent-hashing property).

        Args:
            key: the sketch name being placed.
            count: how many distinct replicas to collect; capped at the
                node count.
        """
        count = min(count, len(self.nodes))
        start = bisect.bisect_right(self._points, _ring_hash(key))
        chosen: List[str] = []
        for i in range(len(self._owners)):
            node = self._owners[(start + i) % len(self._owners)]
            if node not in chosen:
                chosen.append(node)
                if len(chosen) == count:
                    break
        return chosen


class ClusterClient:
    """``ServiceClient``-shaped access to a replicated multi-node cluster.

    Every sketch name consistent-hashes to ``replication`` nodes.
    Mutations (create / upload / ingest / push / frames / delete) are
    applied to each replica in preference order; an *unreachable*
    replica is skipped (it will simply miss those writes), while a
    replica that answers with a logical error (409 duplicate, 400
    incompatible merge) propagates it -- in-sync replicas all answer
    alike, so the first logical verdict is the cluster's verdict.
    Reads merge every live replica's sketch, so they stay exact as
    long as *any* replica that saw every write is alive.

    Args:
        nodes: base URLs of the member F0 services.
        replication: replicas per sketch name (capped at node count).
        vnodes: virtual nodes per physical node for the ring.
        timeout: per-request socket timeout, passed to each node
            client.  Keep it small relative to your fail-over budget --
            a dead-but-routable node costs one timeout per operation.
        client_factory: ``factory(url, timeout) -> ServiceClient``-like;
            injectable for tests.

    Raises:
        ReproError: empty node list or replication < 1.
    """

    def __init__(self, nodes: Sequence[str],
                 replication: int = DEFAULT_REPLICATION,
                 vnodes: int = DEFAULT_VNODES,
                 timeout: float = 30.0,
                 client_factory: Optional[
                     Callable[..., ServiceClient]] = None) -> None:
        if replication < 1:
            raise ReproError("replication must be >= 1")
        self.ring = HashRing(nodes, vnodes=vnodes)
        self.replication = min(replication, len(self.ring.nodes))
        self._factory = client_factory or ServiceClient
        self._timeout = timeout
        self._clients: Dict[str, ServiceClient] = {}

    # -- plumbing ----------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """The member node URLs (ring order is derived, not this list)."""
        return list(self.ring.nodes)

    def _client(self, url: str) -> ServiceClient:
        client = self._clients.get(url)
        if client is None:
            client = self._factory(url, timeout=self._timeout)
            self._clients[url] = client
        return client

    def replicas_for(self, name: str) -> List[str]:
        """The node URLs holding ``name``, in preference order."""
        return self.ring.nodes_for(name, self.replication)

    def _on_replicas(self, name: str, op: Callable[[ServiceClient], object],
                     ) -> List[Tuple[str, object]]:
        """Apply one mutation to every replica of ``name``.

        Unreachable replicas (connection refused / timeout; status 0)
        are skipped; logical errors re-raise immediately.  Returns the
        ``(url, result)`` pairs that succeeded.

        Raises:
            ClusterError: every replica was unreachable.
            ServiceError: a reachable replica rejected the operation.
        """
        done: List[Tuple[str, object]] = []
        last: Optional[ServiceError] = None
        for url in self.replicas_for(name):
            try:
                done.append((url, op(self._client(url))))
            except ServiceError as exc:
                if exc.status != 0:
                    raise
                last = exc
        if not done:
            raise ClusterError(
                f"no live replica for {name!r} among "
                f"{self.replicas_for(name)}") from last
        return done

    # -- mutations (fan out to all replicas) -------------------------------

    def create(self, name: str, **kwargs) -> dict:
        """Create ``name`` on every replica (same params + seed, so the
        replicas start bit-identical).  Keyword arguments mirror
        :meth:`repro.service.client.ServiceClient.create`."""
        done = self._on_replicas(name,
                                 lambda c: c.create(name, **kwargs))
        reply = dict(done[0][1])
        reply["replicas"] = [url for url, _ in done]
        return reply

    def upload(self, name: str, sketch: F0Sketch) -> None:
        """Create-or-replace ``name`` on every replica with one sketch."""
        self._on_replicas(name, lambda c: c.upload(name, sketch))

    def ingest(self, name: str, items: Iterable[int]) -> int:
        """Ingest the items into every replica (returns items sent).

        The iterable is materialised once so each replica sees the
        identical stream -- set semantics make the repetition free.
        """
        batch = [int(x) for x in items]
        self._on_replicas(name, lambda c: c.ingest(name, batch))
        return len(batch)

    def push(self, name: str, sketch: F0Sketch) -> None:
        """Merge-on-put one shard sketch into every replica."""
        self._on_replicas(name, lambda c: c.push(name, sketch))

    def push_frames(self, name: str, sketches: Iterable[F0Sketch]) -> int:
        """Batched merge-on-put of many shard sketches to every replica."""
        batch = list(sketches)
        done = self._on_replicas(name,
                                 lambda c: c.push_frames(name, batch))
        return int(done[0][1])

    def delete(self, name: str) -> None:
        """Drop ``name`` from every replica (a 404 replica is fine)."""

        def _delete(client: ServiceClient) -> bool:
            try:
                client.delete(name)
            except ServiceError as exc:
                if exc.status != 404:
                    raise
            return True

        self._on_replicas(name, _delete)

    # -- reads (merge-on-read over live replicas) --------------------------

    def fetch(self, name: str) -> F0Sketch:
        """The merged sketch over every live replica of ``name``.

        Raises:
            ServiceError: 404 if every live replica lacks the name.
            ClusterError: no replica reachable at all.
        """
        merged: Optional[F0Sketch] = None
        missing: Optional[ServiceError] = None
        down: Optional[ServiceError] = None
        for url in self.replicas_for(name):
            try:
                part = self._client(url).fetch(name)
            except ServiceError as exc:
                if exc.status == 0:
                    down = exc
                    continue
                if exc.status == 404:
                    # A replica that was down during create and came
                    # back empty: the others still hold the full union.
                    missing = exc
                    continue
                raise
            if merged is None:
                merged = part
            else:
                merged.merge(part)
        if merged is not None:
            return merged
        if missing is not None:
            raise missing
        raise ClusterError(
            f"no live replica for {name!r} among "
            f"{self.replicas_for(name)}") from down

    def estimate(self, name: str) -> float:
        """The F0 estimate over the merged live replicas of ``name``."""
        return self.fetch(name).estimate()

    def info(self, name: str) -> Dict[str, object]:
        """Merged metadata plus the replica map and how many answered."""
        replicas = self.replicas_for(name)
        merged = self.fetch(name)
        frame = dumps(merged)
        return {
            "name": name,
            "kind": type(merged).__name__,
            "estimate": merged.estimate(),
            "space_bits": merged.space_bits(),
            "serialized_bytes": len(frame),
            "replicas": replicas,
            "replication": self.replication,
        }

    def sketches(self) -> List[str]:
        """The union of sketch names across every reachable node."""
        names = set()
        reachable = 0
        for url in self.ring.nodes:
            try:
                names.update(self._client(url).sketches())
            except ServiceError as exc:
                if exc.status != 0:
                    raise
                continue
            reachable += 1
        if not reachable:
            raise ClusterError("no cluster node reachable")
        return sorted(names)

    def health(self) -> Dict[str, object]:
        """Per-node liveness: ``ok`` when all answer, else ``degraded``."""
        nodes = []
        live = 0
        for url in self.ring.nodes:
            try:
                reply = self._client(url).health()
            except ServiceError:
                nodes.append({"node": url, "status": "down"})
                continue
            live += 1
            nodes.append({"node": url, "status": "ok",
                          "sketches": reply.get("sketches")})
        return {
            "status": "ok" if live == len(nodes) else "degraded",
            "live": live,
            "nodes": nodes,
        }


# --------------------------------------------------------------------------
# Rebalance: move only the frames whose ring ownership changed


class RebalanceMove(NamedTuple):
    """One name's planned frame movement under a ring change."""

    #: Sketch name being moved.
    name: str
    #: Old replica set, preference order (frame sources).
    sources: List[str]
    #: Nodes gaining ownership, new preference order (frame targets).
    targets: List[str]
    #: Nodes losing ownership (prune candidates once targets hold it).
    releases: List[str]


def plan_rebalance(names: Iterable[str], old_nodes: Sequence[str],
                   new_nodes: Sequence[str],
                   replication: int = DEFAULT_REPLICATION,
                   vnodes: int = DEFAULT_VNODES) -> List[RebalanceMove]:
    """Diff two ring layouts; list only the names whose ownership moved.

    Pure ring arithmetic, no network: for each name the old and new
    replica sets are computed and a :class:`RebalanceMove` is emitted
    only when some node *gained* the name.  Consistent hashing keeps
    this list small -- adding one node to an N-node ring moves ~1/(N+1)
    of the keys, and :func:`rebalance` streams exactly one frame per
    (name, gaining node) pair, nothing else.

    Args:
        names: sketch names currently in the cluster.
        old_nodes: node URLs before the topology change.
        new_nodes: node URLs after it.
        replication: replicas per name (capped at each ring's size).
        vnodes: virtual nodes per physical node (must match the
            clients' setting or the diff is meaningless).
    """
    old_ring = HashRing(old_nodes, vnodes=vnodes)
    new_ring = HashRing(new_nodes, vnodes=vnodes)
    moves: List[RebalanceMove] = []
    for name in sorted(set(names)):
        old_set = old_ring.nodes_for(name, replication)
        new_set = new_ring.nodes_for(name, replication)
        gained = [n for n in new_set if n not in old_set]
        if not gained:
            continue
        released = [n for n in old_set if n not in new_set]
        moves.append(RebalanceMove(name, old_set, gained, released))
    return moves


def rebalance(old_nodes: Sequence[str], new_nodes: Sequence[str],
              replication: int = DEFAULT_REPLICATION,
              vnodes: int = DEFAULT_VNODES, timeout: float = 30.0,
              client_factory: Optional[Callable[..., ServiceClient]] = None,
              prune: bool = False,
              dry_run: bool = False) -> Dict[str, object]:
    """Stream frames to their new owners after a node-set change.

    For every name some node gained, the frame is fetched (raw, never
    decoded) from the first live old replica and merge-pushed to each
    gaining node -- falling back to a create-style upload when the
    target has never seen the name (404).  Merge-on-put makes the whole
    operation idempotent: re-running a rebalance, or racing it with
    live shard uploads, cannot lose or double-count items.

    Args:
        old_nodes: node URLs before the topology change.
        new_nodes: node URLs after it.
        replication: replicas per name (must match the clients').
        vnodes: ring vnodes (must match the clients').
        timeout: per-request socket timeout.
        client_factory: injectable ``factory(url, timeout)`` for tests.
        prune: after a name's every target holds it, delete it from
            nodes that lost ownership (default keeps them -- set
            semantics make stale extra replicas harmless, just unread).
        dry_run: plan and report without touching any node.

    Returns:
        A summary dict: ``names`` examined, ``moved_frames`` streamed
        (== the number of (name, gaining-node) pairs), ``pruned``
        deletions, ``unchanged`` names that kept their replica set,
        and the per-name ``moves``.

    Raises:
        ClusterError: a name's every source replica is unreachable.
        ServiceError: a reachable node rejected a transfer.
    """
    factory = client_factory or ServiceClient
    clients: Dict[str, ServiceClient] = {}

    def _client(url: str) -> ServiceClient:
        if url not in clients:
            clients[url] = factory(url, timeout=timeout)
        return clients[url]

    names: set = set()
    reachable = 0
    for url in old_nodes:
        try:
            names.update(_client(url).sketches())
        except ServiceError as exc:
            if exc.status != 0:
                raise
            continue
        reachable += 1
    if not reachable:
        raise ClusterError("no old-ring node reachable to list sketches")

    moves = plan_rebalance(names, old_nodes, new_nodes,
                           replication=replication, vnodes=vnodes)
    moved = pruned = 0
    for move in moves:
        if dry_run:
            moved += len(move.targets)
            continue
        frame: Optional[bytes] = None
        down: Optional[ServiceError] = None
        for source in move.sources:
            try:
                frame = _client(source).fetch_frame(move.name)
                break
            except ServiceError as exc:
                if exc.status != 0:
                    raise
                down = exc
        if frame is None:
            raise ClusterError(
                f"no live source for {move.name!r} among "
                f"{move.sources}") from down
        for target in move.targets:
            client = _client(target)
            try:
                client.push_frame(move.name, frame)
            except ServiceError as exc:
                if exc.status != 404:
                    raise
                client.upload_frame(move.name, frame)
            moved += 1
        if prune:
            for loser in move.releases:
                try:
                    _client(loser).delete(move.name)
                except ServiceError as exc:
                    if exc.status not in (0, 404):
                        raise
                    continue
                pruned += 1
    return {
        "names": len(names),
        "unchanged": len(names) - len(moves),
        "moved_frames": moved,
        "pruned": pruned,
        "dry_run": dry_run,
        "moves": [{"name": m.name, "targets": m.targets,
                   "releases": m.releases} for m in moves],
    }


#: Create-payload keys a gateway forwards to the node services.
_CREATE_KEYS = ("kind", "universe_bits", "eps", "delta",
                "thresh_constant", "repetitions_constant", "seed",
                "shards", "ttl")

_NAME_RE = SAFE_NAME_RE


class ClusterRouter:
    """The cluster as one routable endpoint (gateway mode).

    Implements the same ``handle(method, path, body) -> Response``
    contract as :class:`repro.service.router.Router`, so any registered
    front end can serve it: ``repro serve --cluster url1,url2`` starts
    an HTTP gateway whose reads merge across replicas and whose writes
    fan out -- clients need no ring logic at all.

    Snapshot/restore are deliberately not proxied: they are per-node
    operations (each node owns its snapshot file), answered with 400.

    Args:
        cluster: the :class:`ClusterClient` to route onto.
        verbose: accepted for front-end-contract parity.
    """

    def __init__(self, cluster: ClusterClient,
                 verbose: bool = False) -> None:
        self.cluster = cluster
        self.verbose = verbose
        #: Gateways hold no local store (front ends read this back).
        self.store = None

    def handle(self, method: str, path: str,
               body: bytes = b"") -> Response:
        """Route one request; never raises for routine service errors."""
        try:
            return self._dispatch(method.upper(), path, body)
        except RouteError as err:
            return Response.error(err.status, str(err))
        except ClusterError as exc:
            return Response.error(503, str(exc))
        except ServiceError as exc:
            status = exc.status if exc.status else 503
            return Response.error(status, str(exc))
        except (StoreFormatError, ReproError, ValueError) as exc:
            return Response.error(400, str(exc))
        except Exception as exc:  # Anything else is a gateway bug.
            return Response.error(500, f"{type(exc).__name__}: {exc}")

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, method: str, path: str, body: bytes) -> Response:
        path = path.split("?", 1)[0].rstrip("/")
        parts = [p for p in path.split("/") if p]
        if parts == ["healthz"] and method == "GET":
            health = self.cluster.health()
            health["sketches"] = len(self.cluster.sketches()) \
                if health["live"] else 0
            return Response.json(200, health)
        if not parts or parts[0] != "v1":
            raise RouteError(404, f"unknown path {path!r}")
        rest = parts[1:]
        if rest == ["sketches"]:
            if method == "GET":
                return Response.json(200,
                                     {"sketches": self.cluster.sketches()})
            if method == "POST":
                return self._create(body)
        elif rest in (["snapshot"], ["restore"]) and method == "POST":
            raise RouteError(
                400, f"{rest[0]} is a per-node operation; call it on "
                     "each node service directly")
        elif 2 <= len(rest) <= 3 and rest[0] == "sketches":
            name = urllib.parse.unquote(rest[1])
            action = rest[2] if len(rest) == 3 else None
            response = self._sketch_op(method, name, action, body)
            if response is not None:
                return response
        raise RouteError(404, f"unknown path {path!r}")

    def _sketch_op(self, method: str, name: str, action: Optional[str],
                   body: bytes) -> Optional[Response]:
        """Handle ``/v1/sketches/<name>[/<action>]``; None = no route."""
        cluster = self.cluster
        if action is None:
            if method == "GET":
                return Response.json(200, cluster.info(name))
            if method == "PUT":
                if not _NAME_RE.match(name):
                    raise RouteError(400,
                                     f"invalid sketch name {name!r}")
                cluster.upload(name, loads_sketch(body))
                return Response.json(200, {"stored": name})
            if method == "DELETE":
                cluster.delete(name)
                return Response.json(200, {"deleted": name})
            return None
        if action == "blob" and method == "GET":
            return Response(200, dumps(cluster.fetch(name)),
                            "application/octet-stream")
        if action == "estimate" and method == "GET":
            return Response.json(200, {"name": name,
                                       "estimate": cluster.estimate(name)})
        if action == "ingest" and method == "POST":
            payload = self._json_body(body)
            items = payload.get("items")
            if not isinstance(items, list) \
                    or not all(isinstance(x, int) for x in items):
                raise RouteError(400,
                                 "ingest body needs items: [int, ...]")
            count = cluster.ingest(name, items)
            return Response.json(200, {"name": name, "ingested": count})
        if action == "merge" and method == "POST":
            cluster.push(name, loads_sketch(body))
            return Response.json(200, {"name": name, "merged": True})
        if action == "frames" and method == "POST":
            incoming = [loads_sketch(f) for f in split_frames(body)]
            count = cluster.push_frames(name, incoming)
            return Response.json(200, {"name": name, "frames": count,
                                       "merged": True})
        return None

    def _create(self, body: bytes) -> Response:
        payload = self._json_body(body)
        name = payload.get("name")
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise RouteError(
                400, "sketch names must be 1-128 chars of "
                     "[A-Za-z0-9._:-], starting alphanumeric")
        kwargs = {k: payload[k] for k in _CREATE_KEYS if k in payload}
        reply = self.cluster.create(name, **kwargs)
        return Response.json(201, reply)

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except ValueError as exc:
            raise RouteError(400, f"malformed JSON body: {exc}")
        if not isinstance(payload, dict):
            raise RouteError(400, "JSON body must be an object")
        return payload


__all__ = [
    "DEFAULT_REPLICATION",
    "DEFAULT_VNODES",
    "ClusterClient",
    "ClusterError",
    "ClusterRouter",
    "HashRing",
    "RebalanceMove",
    "plan_rebalance",
    "rebalance",
]
