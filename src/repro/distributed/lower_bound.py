"""The reduction behind the ``Omega(k/eps^2)`` lower bound (Section 4).

Woodruff--Zhang: any distributed-monitoring protocol for
``(1+eps)``-approximate F0 communicates ``Omega(k/eps^2)`` bits.  The paper
reduces F0 to distributed DNF counting: site ``j``'s items
``a_1 .. a_m in [N]`` become a DNF over ``ceil(log2 N)`` variables whose
solutions are exactly those items (one full-width term each).  This module
builds those reduction instances; benchmark E11 runs the protocols on them
and plots measured bits against ``k/eps^2``.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.common.errors import InvalidParameterError
from repro.formulas.dnf import DnfFormula, DnfTerm


def element_to_term(element: int, num_bits: int) -> DnfTerm:
    """The full-width term whose unique solution is ``element``."""
    if element >> num_bits:
        raise InvalidParameterError("element does not fit in num_bits")
    lits = [v if (element >> (v - 1)) & 1 else -v
            for v in range(1, num_bits + 1)]
    return DnfTerm(lits)


def f0_items_to_site_formulas(items_per_site: Sequence[Sequence[int]],
                              universe_size: int) -> List[DnfFormula]:
    """Encode a distributed F0 instance as distributed DNF counting input.

    ``items_per_site[j]`` are site ``j``'s stream items over
    ``[universe_size]``; the result is one DNF per site over
    ``ceil(log2 universe_size)`` variables whose solution set is the site's
    distinct item set, so ``|Sol(or_j phi_j)| = F0`` of the joint stream.
    """
    if universe_size < 2:
        raise InvalidParameterError("universe must have at least 2 elements")
    num_bits = max(1, math.ceil(math.log2(universe_size)))
    formulas = []
    for items in items_per_site:
        terms = [element_to_term(x, num_bits) for x in sorted(set(items))]
        formulas.append(DnfFormula(num_bits, terms))
    return formulas
