"""Seeded soak/load harness for long-lived windowed-sketch services.

A *soak episode* is a deterministic stream of timestamped ingest events
-- generated from one integer seed, serialisable to JSONL
byte-identically -- replayed against a :class:`WindowedF0` sketch
either directly (``mode="store"``) or through a live multi-process
service (``mode="service"``).  While the episode runs, the harness:

* tracks a per-window **exact reference** (sets bucketed by the same
  ring epochs the sketch uses) and checks every sampled estimate
  against the ``(1 + eps)`` envelope band;
* enforces a **byte budget** against the sketch's reported
  ``space_bits`` (a windowed sketch under churn must stay flat; the
  exact reference keeps growing -- that gap is the point);
* exercises the **snapshot round trip** (serialize, reload, re-serialize
  must be bit-identical);
* writes one JSON **artifact** per episode recording the seed, git
  hash, rss ceiling, eviction counts and envelope rate, so a CI
  failure is reproducible from the artifact alone.

Every number derives from ``random.Random(seed)``: rerunning an
episode with the same seed regenerates the same JSONL bytes and the
same sketch states.  ``python tools/soak.py --seed 7 --out DIR`` runs
the standard episode set from the command line; ``--smoke`` runs the
one small episode tier-1 CI uses.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.common.errors import ReproError  # noqa: E402
from repro.store.factory import build_sketch  # noqa: E402
from repro.store.serialize import dumps, loads  # noqa: E402
from repro.streaming.base import SketchParams  # noqa: E402

#: Accuracy knobs every standard episode uses -- loose enough that the
#: cheap sketches stay fast, tight enough that a broken rotation (items
#: never evicted, or evicted too early) lands far outside the band.
SOAK_PARAMS = dict(eps=0.7, delta=0.3, thresh_constant=12.0,
                   repetitions_constant=3.0)


class SoakFailure(ReproError):
    """A soak gate (envelope, byte budget, round trip) was violated."""


@dataclass(frozen=True)
class EpisodeSpec:
    """One fully-determined soak episode.

    Every field feeds the seeded generator, so two specs that compare
    equal replay byte-identically.
    """

    name: str
    seed: int
    kind: str = "minimum"
    universe_bits: int = 14
    window: float = 8.0
    buckets: int = 4
    ticks: int = 48
    base_rate: int = 40
    eps: float = SOAK_PARAMS["eps"]
    delta: float = SOAK_PARAMS["delta"]
    thresh_constant: float = SOAK_PARAMS["thresh_constant"]
    repetitions_constant: float = SOAK_PARAMS["repetitions_constant"]
    shards: int = 1

    @property
    def width(self) -> float:
        """Ring-bucket width in logical time units."""
        return self.window / self.buckets

    @property
    def params(self) -> SketchParams:
        """The spec's accuracy knobs as a :class:`SketchParams`."""
        return SketchParams(
            eps=self.eps, delta=self.delta,
            thresh_constant=self.thresh_constant,
            repetitions_constant=self.repetitions_constant)

    def build(self):
        """A fresh sketch matching this spec (seeded by ``seed``)."""
        return build_sketch(self.kind, self.universe_bits, self.params,
                            seed=self.seed, shards=self.shards,
                            window=self.window, buckets=self.buckets)


def generate_events(spec: EpisodeSpec) -> Iterator[Dict[str, object]]:
    """The episode's event stream: ``{"t": float, "items": [int, ...]}``.

    Ticks advance logical time by half a ring-bucket width and move
    through three phases:

    * **churn** (first third): a steady rate of uniform draws -- old
      items keep falling out of the window while new ones arrive.
    * **burst** (second third): near-quiet with a 6x spike every fifth
      tick drawn from a narrow range (heavy repetition).
    * **rolling cardinality** (final third): the draw range ramps up
      and back down, so the true windowed cardinality rises and falls.
    """
    rng = random.Random(spec.seed)
    universe = 1 << spec.universe_bits
    third = max(1, spec.ticks // 3)
    for tick in range(spec.ticks):
        t = tick * (spec.width / 2.0)
        if tick < third:  # churn
            count = spec.base_rate
            lo, hi = 0, universe
        elif tick < 2 * third:  # burst
            if tick % 5 == 0:
                count = 6 * spec.base_rate
                lo, hi = 0, max(2, universe // 64)
            else:
                count = max(1, spec.base_rate // 4)
                lo, hi = 0, universe
        else:  # rolling cardinality
            phase = (tick - 2 * third) / max(1, spec.ticks - 2 * third)
            ramp = 1.0 - abs(2.0 * phase - 1.0)  # 0 -> 1 -> 0
            count = spec.base_rate
            hi = max(2, int(universe * (0.05 + 0.95 * ramp)))
            lo = 0
        items = [rng.randrange(lo, hi) for _ in range(count)]
        yield {"items": items, "t": t}


def episode_jsonl(spec: EpisodeSpec) -> bytes:
    """The episode as canonical JSONL bytes (sorted keys, ``\\n`` ends).

    Byte-identical across reruns of the same spec -- the regeneration
    gate :mod:`tests.test_soak` enforces.
    """
    lines = [json.dumps(event, sort_keys=True, separators=(",", ":"))
             for event in generate_events(spec)]
    return ("\n".join(lines) + "\n").encode("utf-8")


def write_episode(spec: EpisodeSpec, path: str) -> int:
    """Write the episode's JSONL stream to ``path``; returns events."""
    data = episode_jsonl(spec)
    with open(path, "wb") as f:
        f.write(data)
    return data.count(b"\n")


def read_episode(path: str) -> List[Dict[str, object]]:
    """Load a JSONL episode file back into its event list."""
    events = []
    with open(path, "rb") as f:
        for line in f:
            if line.strip():
                events.append(json.loads(line))
    return events


class ExactWindowReference:
    """Ground truth mirroring the ring's epoch bucketing exactly.

    Items live in per-epoch sets; the reference count for the trailing
    window is the union over the ``buckets`` newest epochs -- the same
    set the sketch's merged ring summarises, so reference and sketch
    disagree only by sketching error, never by bucketing skew.
    """

    def __init__(self, width: float, buckets: int) -> None:
        self.width = width
        self.buckets = buckets
        self._epochs: Dict[int, set] = {}
        self._epoch = 0

    def observe(self, t: float, items) -> None:
        """Record ``items`` at logical time ``t``."""
        epoch = int(math.floor(t / self.width))
        self._epoch = max(self._epoch, epoch)
        self._epochs.setdefault(epoch, set()).update(items)
        horizon = self._epoch - self.buckets
        for stale in [e for e in self._epochs if e <= horizon]:
            del self._epochs[stale]

    def advance(self, t: float) -> None:
        """Move the reference clock without recording items."""
        self.observe(t, ())

    def truth(self) -> int:
        """Exact distinct count over the live window."""
        live: set = set()
        for epoch in range(self._epoch - self.buckets + 1,
                           self._epoch + 1):
            live |= self._epochs.get(epoch, set())
        return len(live)


def in_envelope(estimate: float, truth: float, eps: float) -> bool:
    """True when ``estimate`` sits in the ``(1 + eps)`` band of truth."""
    if truth == 0:
        return estimate == 0
    return truth / (1.0 + eps) <= estimate <= (1.0 + eps) * truth


def git_hash() -> str:
    """The repo's current commit hash, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True,
            cwd=os.path.dirname(os.path.abspath(__file__)), timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.decode("ascii", "replace").strip() or "unknown"


def rss_ceiling_kib() -> int:
    """Peak resident set size of this process in KiB (0 if unknown)."""
    try:
        import resource
    except ImportError:
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@dataclass
class EpisodeReport:
    """Everything a failed CI run needs to reproduce an episode."""

    episode: str
    seed: int
    git_hash: str
    mode: str
    kind: str
    window: float
    buckets: int
    shards: int
    ticks: int = 0
    items: int = 0
    checkpoints: int = 0
    envelope_ok: int = 0
    envelope_rate: float = 1.0
    evictions: int = 0
    max_space_bits: int = 0
    byte_budget: Optional[int] = None
    rss_ceiling_kib: int = 0
    snapshot_roundtrip_ok: bool = True
    failures: List[str] = field(default_factory=list)

    def gate(self, min_envelope_rate: float) -> None:
        """Raise :class:`SoakFailure` unless every gate held."""
        problems = list(self.failures)
        if self.envelope_rate < min_envelope_rate:
            problems.append(
                f"envelope rate {self.envelope_rate:.3f} < "
                f"{min_envelope_rate:.3f} "
                f"({self.envelope_ok}/{self.checkpoints} checkpoints)")
        if problems:
            raise SoakFailure(
                f"episode {self.episode!r} (seed {self.seed}): "
                + "; ".join(problems))


def _drive(spec: EpisodeSpec, events, sketch_ops: Dict[str, Callable],
           report: EpisodeReport, byte_budget: Optional[int],
           check_every: int) -> None:
    """Replay ``events`` through abstract sketch ops, filling ``report``.

    ``sketch_ops`` maps ``advance(t)``, ``ingest(items)``,
    ``estimate() -> float`` and ``space_bits() -> int`` onto whichever
    transport (in-process store or live service) the episode targets,
    so the checking logic is written exactly once.
    """
    reference = ExactWindowReference(spec.width, spec.buckets)
    for index, event in enumerate(events):
        t = float(event["t"])
        items = [int(x) for x in event["items"]]
        sketch_ops["advance"](t)
        reference.advance(t)
        if items:
            sketch_ops["ingest"](items)
            reference.observe(t, items)
        report.ticks += 1
        report.items += len(items)
        if (index + 1) % check_every and index + 1 != len(events):
            continue
        estimate = sketch_ops["estimate"]()
        truth = reference.truth()
        report.checkpoints += 1
        if in_envelope(estimate, truth, spec.eps):
            report.envelope_ok += 1
        bits = int(sketch_ops["space_bits"]())
        report.max_space_bits = max(report.max_space_bits, bits)
        if byte_budget is not None and bits > 8 * byte_budget:
            report.failures.append(
                f"space {bits // 8} B exceeds byte budget "
                f"{byte_budget} B at tick {report.ticks}")
    report.envelope_rate = (report.envelope_ok / report.checkpoints
                            if report.checkpoints else 1.0)


def run_episode(spec: EpisodeSpec, mode: str = "store",
                byte_budget: Optional[int] = None,
                check_every: int = 4, procs: int = 2,
                events: Optional[List[Dict[str, object]]] = None,
                ) -> EpisodeReport:
    """Replay one episode and return its filled :class:`EpisodeReport`.

    Args:
        spec: the episode to run.
        mode: ``"store"`` drives the sketch in-process;
            ``"service"`` drives a live multi-process service over
            HTTP (pre-fork workers, shared delta log).
        byte_budget: fail any checkpoint whose serialized-state bound
            ``space_bits/8`` exceeds this many bytes.
        check_every: checkpoint cadence in ticks (the final tick always
            checks).
        events: replay this pre-loaded event list instead of
            regenerating from the spec (the JSONL-replay path).

    The report is returned for all outcomes; call
    :meth:`EpisodeReport.gate` to turn violations into a raise.
    """
    if events is None:
        events = list(generate_events(spec))
    report = EpisodeReport(
        episode=spec.name, seed=spec.seed, git_hash=git_hash(),
        mode=mode, kind=spec.kind, window=spec.window,
        buckets=spec.buckets, shards=spec.shards,
        byte_budget=byte_budget)
    if mode == "store":
        _run_store_mode(spec, events, report, byte_budget, check_every)
    elif mode == "service":
        _run_service_mode(spec, events, report, byte_budget,
                          check_every, procs)
    else:
        raise ReproError(f"unknown soak mode {mode!r}; "
                         "use 'store' or 'service'")
    report.rss_ceiling_kib = rss_ceiling_kib()
    return report


def _run_store_mode(spec: EpisodeSpec, events, report: EpisodeReport,
                    byte_budget: Optional[int],
                    check_every: int) -> None:
    """In-process episode: the sketch lives in this interpreter."""
    sketch = spec.build()
    ops = {
        "advance": sketch.advance,
        "ingest": sketch.process_batch,
        "estimate": sketch.estimate,
        "space_bits": sketch.space_bits,
    }
    _drive(spec, events, ops, report, byte_budget, check_every)
    report.evictions = _evictions(sketch)
    frame = dumps(sketch)
    report.snapshot_roundtrip_ok = dumps(loads(frame)) == frame
    if not report.snapshot_roundtrip_ok:
        report.failures.append("snapshot round trip not bit-identical")


def _run_service_mode(spec: EpisodeSpec, events, report: EpisodeReport,
                      byte_budget: Optional[int], check_every: int,
                      procs: int) -> None:
    """Live-service episode: every op travels over HTTP to a pre-fork
    multi-process fleet reconciling through the shared delta log."""
    from repro.service.client import ServiceClient
    from repro.service.multiproc import MultiprocFrontend
    from repro.service.router import Router

    frontend = MultiprocFrontend(("127.0.0.1", 0), Router(),
                                 procs=procs, delta_interval=0.0)
    frontend.start_background()
    try:
        client = ServiceClient(frontend.url)
        client.create(spec.name, kind=spec.kind,
                      universe_bits=spec.universe_bits, eps=spec.eps,
                      delta=spec.delta,
                      thresh_constant=spec.thresh_constant,
                      repetitions_constant=spec.repetitions_constant,
                      seed=spec.seed, shards=spec.shards,
                      window=spec.window, buckets=spec.buckets)
        ops = {
            "advance": lambda t: client.advance(spec.name, t),
            "ingest": lambda items: client.ingest(spec.name, items),
            "estimate": lambda: client.estimate(spec.name),
            "space_bits":
                lambda: int(client.info(spec.name)["space_bits"]),
        }
        _drive(spec, events, ops, report, byte_budget, check_every)
        final = client.fetch(spec.name)
        report.evictions = _evictions(final)
        frame = dumps(final)
        report.snapshot_roundtrip_ok = dumps(loads(frame)) == frame
        if not report.snapshot_roundtrip_ok:
            report.failures.append(
                "snapshot round trip not bit-identical")
    finally:
        frontend.stop()


def _evictions(sketch) -> int:
    """Total ring evictions, summed over shards when sharded."""
    if hasattr(sketch, "evictions"):
        return int(sketch.evictions)
    shards = getattr(sketch, "shards", None)
    if shards:
        return sum(int(getattr(s, "evictions", 0)) for s in shards)
    return 0


def write_artifact(report: EpisodeReport, out_dir: str) -> str:
    """Write the report as ``<out_dir>/<episode>.json``; returns path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{report.episode}.json")
    with open(path, "w") as f:
        json.dump(asdict(report), f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def standard_episodes(seed: int) -> List[EpisodeSpec]:
    """The nightly episode set: every sketch kind, one sharded run.

    Flajolet-Martin runs with a wider ``eps`` and more repetitions:
    its estimator snaps to powers of two, so a ``(1 + 0.7)`` band is
    tighter than the algorithm's own constant-factor guarantee.
    """
    episodes = [
        EpisodeSpec(name=f"soak-{kind}", seed=seed + index, kind=kind)
        for index, kind in enumerate(
            ("minimum", "estimation", "bucketing"))
    ]
    episodes.append(EpisodeSpec(name="soak-fm", seed=seed + 3,
                                kind="fm", eps=2.0,
                                repetitions_constant=12.0))
    episodes.append(EpisodeSpec(name="soak-sharded", seed=seed + 100,
                                kind="minimum", shards=3))
    return episodes


def smoke_episode(seed: int) -> EpisodeSpec:
    """The tiny deterministic episode tier-1 CI replays every run."""
    return EpisodeSpec(name="soak-smoke", seed=seed, kind="minimum",
                       universe_bits=12, window=6.0, buckets=3,
                       ticks=18, base_rate=25)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry: run episodes, write artifacts, gate, exit non-zero
    on any violation."""
    parser = argparse.ArgumentParser(
        description="seeded soak harness for windowed F0 sketches")
    parser.add_argument("--seed", type=int, default=7,
                        help="master seed (default 7)")
    parser.add_argument("--out", default="soak-artifacts",
                        help="artifact directory "
                             "(default soak-artifacts)")
    parser.add_argument("--mode", choices=("store", "service"),
                        default="store",
                        help="drive the sketch in-process (store) or "
                             "through a live multiproc service")
    parser.add_argument("--smoke", action="store_true",
                        help="run only the small tier-1 smoke episode")
    parser.add_argument("--byte-budget", type=int, default=262144,
                        help="per-sketch serialized-state budget in "
                             "bytes (default 256 KiB)")
    parser.add_argument("--min-envelope-rate", type=float, default=0.6,
                        help="minimum fraction of checkpoints inside "
                             "the (1+eps) band (default 0.6)")
    args = parser.parse_args(argv)
    episodes = ([smoke_episode(args.seed)] if args.smoke
                else standard_episodes(args.seed))
    status = 0
    for spec in episodes:
        report = run_episode(spec, mode=args.mode,
                             byte_budget=args.byte_budget)
        path = write_artifact(report, args.out)
        try:
            report.gate(args.min_envelope_rate)
            verdict = "ok"
        except SoakFailure as exc:
            verdict = f"FAIL ({exc})"
            status = 1
        print(f"{spec.name}: {report.items} items / {report.ticks} "
              f"ticks, envelope {report.envelope_ok}/"
              f"{report.checkpoints}, evictions {report.evictions}, "
              f"space <= {report.max_space_bits // 8} B, "
              f"artifact {path} -- {verdict}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
