#!/usr/bin/env python3
"""Markdown link checker for the repository docs (stdlib only).

Scans the given markdown files/directories for inline links
(``[text](target)``), and fails when a *relative* target does not
exist, or when a ``#fragment`` does not match a heading of the target
file (GitHub's anchor slugification).  External links (http/https/
mailto) are recorded but not fetched -- CI must not depend on the
network.

Usage::

    python tools/check_markdown_links.py README.md DESIGN.md docs

Exit status: 0 when every relative link resolves, 1 otherwise (with a
per-link report on stderr).
"""

from __future__ import annotations

import os
import re
import sys
from typing import Dict, List, Set, Tuple

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor rule: lowercase, drop everything but
    word characters / spaces / hyphens, spaces become hyphens."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: str) -> Set[str]:
    """Every anchor a markdown file exposes (duplicates get -1, -2...)."""
    counts: Dict[str, int] = {}
    anchors: Set[str] = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if not match:
                continue
            slug = github_slug(match.group(1))
            seen = counts.get(slug, 0)
            counts[slug] = seen + 1
            anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def markdown_links(path: str) -> List[Tuple[int, str]]:
    """``(line_number, target)`` for every inline link outside fences.

    Link *text* may wrap across lines (prose reflow), so the scan runs
    over the fence-stripped text as a whole, not line by line.
    """
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()
    kept = []
    in_fence = False
    for line in lines:
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            kept.append("\n")
            continue
        kept.append("\n" if in_fence else line)
    text = "".join(kept)
    return [(text[:match.start()].count("\n") + 1, match.group(1))
            for match in LINK_RE.finditer(text)]


def collect_markdown_files(arguments: List[str]) -> List[str]:
    files: List[str] = []
    for arg in arguments:
        if os.path.isdir(arg):
            for root, _dirs, names in os.walk(arg):
                files.extend(os.path.join(root, n) for n in sorted(names)
                             if n.endswith(".md"))
        elif arg.endswith(".md"):
            files.append(arg)
        else:
            print(f"warning: skipping non-markdown argument {arg!r}",
                  file=sys.stderr)
    return files


def check_file(path: str) -> Tuple[List[str], int]:
    """Returns (error messages, external link count) for one file."""
    errors: List[str] = []
    external = 0
    base = os.path.dirname(os.path.abspath(path))
    for line, target in markdown_links(path):
        if target.startswith(EXTERNAL_PREFIXES):
            external += 1
            continue
        target_path, _, fragment = target.partition("#")
        if target_path:
            resolved = os.path.normpath(os.path.join(base, target_path))
            if not os.path.exists(resolved):
                errors.append(f"{path}:{line}: broken link {target!r} "
                              f"(no such file {resolved})")
                continue
        else:
            resolved = os.path.abspath(path)  # Same-file anchor.
        if fragment:
            if not resolved.endswith(".md") or os.path.isdir(resolved):
                continue  # Anchors into non-markdown targets: skip.
            if github_slug(fragment) not in heading_anchors(resolved):
                errors.append(f"{path}:{line}: broken anchor {target!r} "
                              f"(no heading slugs to #{fragment} in "
                              f"{resolved})")
    return errors, external


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    files = collect_markdown_files(argv)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 2
    all_errors: List[str] = []
    checked = external_total = 0
    for path in files:
        errors, external = check_file(path)
        all_errors.extend(errors)
        checked += 1
        external_total += external
    for message in all_errors:
        print(message, file=sys.stderr)
    status = "FAILED" if all_errors else "ok"
    print(f"link check {status}: {checked} files, "
          f"{len(all_errors)} broken links, "
          f"{external_total} external links (not fetched)")
    return 1 if all_errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
