#!/usr/bin/env python3
"""Quickstart: the unified framework in one sitting.

Counts the models of a CNF and a DNF formula with all three transformed
counters (Bucketing/ApproxMC, Minimum, Estimation) plus the FlajoletMartin
rough counter, then estimates the F0 of a raw stream with the three
corresponding sketches -- the two sides of the paper's bridge.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    BucketingF0,
    EstimationF0,
    ExactF0,
    MinimumF0,
    SketchParams,
    approx_mc,
    approx_model_count_est,
    approx_model_count_min,
    compute_f0,
    exact_model_count,
    flajolet_martin_count,
    random_dnf,
    random_k_cnf,
)
from repro.streaming.streams import shuffled_stream_with_f0


def count_both_representations() -> None:
    rng = random.Random(2021)
    params = SketchParams(eps=0.8, delta=0.2,
                          thresh_constant=24.0, repetitions_constant=6.0)

    cnf = random_k_cnf(rng, num_vars=12, num_clauses=24, k=3)
    dnf = random_dnf(rng, num_vars=14, num_terms=8, width=5)

    for name, formula in (("CNF", cnf), ("DNF", dnf)):
        truth = exact_model_count(formula)
        bucketing = approx_mc(formula, params, random.Random(1))
        minimum = approx_model_count_min(formula, params, random.Random(2))
        estimation = approx_model_count_est(formula, params,
                                            random.Random(3))
        rough = flajolet_martin_count(formula, random.Random(4),
                                      repetitions=9)
        print(f"\n#{name} over {formula.num_vars} variables "
              f"(exact count {truth}):")
        print(f"  ApproxMC (Bucketing)   {bucketing.estimate:10.1f}   "
              f"oracle calls {bucketing.oracle_calls}")
        print(f"  Minimum-based          {minimum.estimate:10.1f}   "
              f"oracle calls {minimum.oracle_calls}")
        print(f"  Estimation-based       {estimation.estimate:10.1f}   "
              f"oracle calls {estimation.oracle_calls}")
        print(f"  FlajoletMartin (rough) {rough.estimate:10.1f}   "
              f"oracle calls {rough.oracle_calls}")


def sketch_a_stream() -> None:
    rng = random.Random(7)
    params = SketchParams(eps=0.5, delta=0.2,
                          thresh_constant=24.0, repetitions_constant=6.0)
    universe_bits = 16
    stream = shuffled_stream_with_f0(rng, universe_bits, f0=700,
                                     length=3000)

    exact = compute_f0(iter(stream), ExactF0())
    print(f"\nStream of {len(stream)} items over 2^{universe_bits} "
          f"universe (exact F0 {exact:.0f}):")
    for name, est in (
        ("Bucketing", BucketingF0(universe_bits, params, rng)),
        ("Minimum  ", MinimumF0(universe_bits, params, rng)),
        ("Estimation", EstimationF0(universe_bits, params, rng)),
    ):
        value = compute_f0(iter(stream), est)
        print(f"  {name} sketch estimate {value:10.1f}")


if __name__ == "__main__":
    count_both_representations()
    sketch_a_stream()
