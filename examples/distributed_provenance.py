#!/usr/bin/env python3
"""Distributed DNF counting across database shards (Section 4).

A provenance DNF is sharded term-wise across k sites (think: a distributed
probabilistic database where each node stores part of a lineage
expression).  The coordinator estimates the number of satisfying
assignments of the full formula while the simulation meters every
communicated bit, comparing the three protocols' accuracy and cost.

Run:  python examples/distributed_provenance.py
"""

import random

from repro import (
    SketchParams,
    distributed_bucketing,
    distributed_estimation,
    distributed_minimum,
    exact_model_count,
    partition_round_robin,
    random_dnf,
)


def main() -> None:
    rng = random.Random(11)
    num_vars = 12
    formula = random_dnf(rng, num_vars, num_terms=24, width=5)
    truth = exact_model_count(formula)
    params = SketchParams(eps=0.5, delta=0.2,
                          thresh_constant=24.0, repetitions_constant=6.0)

    print(f"formula: {formula.num_terms} terms over {num_vars} vars, "
          f"exact count {truth}\n")
    header = (f"{'protocol':<12} {'k':>3} {'estimate':>10} "
              f"{'rel.err':>8} {'upload bits':>12} {'total bits':>11}")
    print(header)
    print("-" * len(header))

    for k in (2, 4, 8):
        sites = partition_round_robin(formula, k)
        for name, protocol in (
            ("bucketing", distributed_bucketing),
            ("minimum", distributed_minimum),
            ("estimation", distributed_estimation),
        ):
            result = protocol(sites, params, random.Random(500 + k))
            rel = abs(result.estimate - truth) / truth
            print(f"{name:<12} {k:>3} {result.estimate:>10.1f} "
                  f"{rel:>8.3f} {result.upload_bits:>12} "
                  f"{result.total_bits:>11}")
        print()

    print("Shapes to notice (cf. Section 4): upload cost grows linearly in "
          "k for all\nprotocols; Minimum ships Theta(n/eps^2) bits of hash "
          "values per site while\nBucketing ships compressed fingerprints, "
          "and Estimation ships only level\nnumbers -- the paper's "
          "O~(k(n + 1/eps^2)) vs O(k n / eps^2) separation.")


if __name__ == "__main__":
    main()
