#!/usr/bin/env python3
"""Quickstart: the durable sketch store and the F0 counting service.

Walks the whole deployment loop in one script:

1. start the service (in-process, ephemeral port);
2. create a named Minimum sketch;
3. push four shard uploads "from the edge" -- each worker ingests its
   partition into a local replica and uploads one merge;
4. query the live estimate and compare to ground truth;
5. snapshot to disk, stop the server;
6. start a fresh server, restore the snapshot, query again -- same
   estimate, durably.

Run:  PYTHONPATH=src python examples/service_quickstart.py
"""

import os
import random
import tempfile
import threading

from repro.service import F0Server, ServiceClient

UNIVERSE_BITS = 24
STREAM_LENGTH = 20_000
SHARDS = 4


def main() -> None:
    rng = random.Random(7)
    items = [rng.getrandbits(UNIVERSE_BITS) for _ in range(STREAM_LENGTH)]
    truth = len(set(items))

    # 1. A long-lived service is one object; port 0 = ephemeral.
    server = F0Server(("127.0.0.1", 0)).start_background()
    client = ServiceClient(server.url)
    print(f"service up at {server.url}")

    # 2. Create a named sketch.  Anyone repeating these arguments (same
    #    seed) builds a replica with identical hash seeds.
    client.create("clicks", kind="minimum", universe_bits=UNIVERSE_BITS,
                  eps=0.5, thresh_constant=24, repetitions_constant=5,
                  seed=42)

    # 3. Shard uploads: ingest locally, upload one merge each.  The
    #    store's per-sketch lock serializes concurrent merges.
    def shard_worker(part):
        worker = ServiceClient(server.url)
        replica = worker.replica("clicks")
        replica.process_batch(part)
        worker.push("clicks", replica)

    threads = [
        threading.Thread(target=shard_worker, args=(items[i::SHARDS],))
        for i in range(SHARDS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # 4. Query.
    estimate = client.estimate("clicks")
    info = client.info("clicks")
    print(f"estimate {estimate:.0f} vs true F0 {truth} "
          f"({estimate / truth:.3f}x)")
    print(f"sketch holds {info['space_bits']} bits "
          f"({info['serialized_bytes']} bytes on the wire) for a "
          f"{STREAM_LENGTH}-item stream")

    # 5. Snapshot and stop -- the sketch outlives the process.
    snapshot = os.path.join(tempfile.mkdtemp(), "sketches.bin")
    client.snapshot(snapshot)
    server.stop()
    print(f"snapshot written to {snapshot}; server stopped")

    # 6. Restart and restore: same estimate, and the sketch keeps
    #    absorbing new uploads.
    server2 = F0Server(("127.0.0.1", 0),
                       snapshot_path=snapshot).start_background()
    client2 = ServiceClient(server2.url)
    client2.restore()
    restored = client2.estimate("clicks")
    print(f"restored estimate {restored:.0f} "
          f"(identical: {restored == estimate})")
    assert restored == estimate
    server2.stop()


if __name__ == "__main__":
    main()
