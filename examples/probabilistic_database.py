#!/usr/bin/env python3
"""Query probability in a tuple-independent probabilistic database.

The paper motivates #DNF by provenance in probabilistic databases
(Re--Suciu, Senellart): the probability of a Boolean query equals the
*weighted* model count of its provenance DNF, where each variable is a
base tuple with an independence probability.

This example builds a small supplier/part database, derives the provenance
DNF of the query

    "is some critical part available from a low-risk supplier?"

and computes its probability three ways: exact (brute force), the paper's
weighted-DNF-to-ranges reduction through the structured F0 estimator, and
the Karp--Luby Monte Carlo baseline (via unweighted counting on an
expanded formula would be costlier; we use KL on the unweighted projection
for comparison of the counting engines).

Run:  python examples/probabilistic_database.py
"""

import random
from fractions import Fraction

from repro import DnfFormula, SketchParams, WeightFunction
from repro.structured.weighted import (
    weighted_dnf_count,
    weighted_dnf_exact_via_ranges,
)

# ----------------------------------------------------------------------
# A tiny tuple-independent database.
#
# supplies(s, p) facts; each fact is a Boolean variable with a marginal
# probability (dyadic, as the paper's reduction requires).
# ----------------------------------------------------------------------

SUPPLIERS = ["acme", "bolt", "crux", "dyna"]
CRITICAL_PARTS = ["valve", "rotor"]
LOW_RISK = {"acme", "crux"}

# (supplier, part) -> (k, m) meaning probability k / 2^m.
FACTS = {
    ("acme", "valve"): (3, 2),   # 0.75
    ("acme", "rotor"): (1, 2),   # 0.25
    ("bolt", "valve"): (1, 1),   # 0.50
    ("crux", "rotor"): (7, 3),   # 0.875
    ("crux", "valve"): (1, 3),   # 0.125
    ("dyna", "rotor"): (5, 3),   # 0.625
}


def build_provenance():
    """Variables are facts; the query's provenance is a DNF: one term per
    (low-risk supplier, critical part) fact."""
    fact_var = {fact: i + 1 for i, fact in enumerate(sorted(FACTS))}
    num_vars = len(fact_var)
    terms = [
        [fact_var[(s, p)]]
        for (s, p) in sorted(FACTS)
        if s in LOW_RISK and p in CRITICAL_PARTS
    ]
    provenance = DnfFormula(num_vars, terms)
    weights = WeightFunction(num_vars, {
        fact_var[f]: km for f, km in FACTS.items()
    })
    return provenance, weights, fact_var


def main() -> None:
    provenance, weights, fact_var = build_provenance()
    print("provenance DNF:",
          [list(t.literals) for t in provenance.terms])

    exact = weights.formula_weight_bruteforce(provenance)
    via_ranges = weighted_dnf_exact_via_ranges(provenance, weights)
    print(f"\nexact query probability          : {exact} "
          f"(= {float(exact):.6f})")
    print(f"exact via range reduction        : {via_ranges}")
    assert exact == via_ranges, "the reduction must be weight-preserving"

    params = SketchParams(eps=0.3, delta=0.2,
                          thresh_constant=48.0, repetitions_constant=8.0)
    estimates = [
        weighted_dnf_count(provenance, weights, params,
                           random.Random(100 + s))
        for s in range(5)
    ]
    for i, est in enumerate(estimates):
        err = abs(est - float(exact)) / float(exact)
        print(f"hashing-based estimate (seed {i})  : {est:.6f}   "
              f"relative error {err:.3f}")


if __name__ == "__main__":
    main()
