#!/usr/bin/env python3
"""Range-efficient F0 over network telemetry (Section 5, Theorem 6).

A firewall exports *rules hit* rather than individual packets: each event
is a rectangle  [src_lo, src_hi] x [port_lo, port_hi]  of address/port
space.  "How many distinct (address, port) pairs were covered today?" is
exactly F0 over a stream of 2-dimensional ranges -- the motivating shape
for range-efficient distinct counting (max-dominance norms, distinct
summation, triangle counting all reduce to it).

A naive estimator would expand each rectangle into its member points
(here up to 2^16 of them per rule); the structured estimator processes
each rule in time polynomial in the *description* size via the
range-to-subcube compilation.

Run:  python examples/network_telemetry.py
"""

import random
import time

from repro import MultiRange, SketchParams, StructuredF0Minimum
from repro.streaming.exact import ExactF0


def synthetic_rules(rng, count, bits):
    """Rules mix broad scans (large rectangles) with surgical blocks."""
    rules = []
    for _ in range(count):
        if rng.random() < 0.3:  # Broad scan.
            src_lo = rng.randrange(1 << (bits - 2))
            src_hi = min((1 << bits) - 1,
                         src_lo + rng.randrange(1 << (bits - 1)))
            port_lo = rng.randrange(1 << (bits - 3))
            port_hi = min((1 << bits) - 1, port_lo + rng.randrange(64))
        else:  # Surgical block.
            src_lo = rng.randrange(1 << bits)
            src_hi = min((1 << bits) - 1, src_lo + rng.randrange(16))
            port_lo = rng.randrange(1 << bits)
            port_hi = min((1 << bits) - 1, port_lo + rng.randrange(4))
        rules.append(MultiRange([(src_lo, src_hi), (port_lo, port_hi)],
                                bits_per_dim=bits))
    return rules


def main() -> None:
    rng = random.Random(23)
    bits = 8  # 8-bit address/port halves keep the exact baseline cheap.
    rules = synthetic_rules(rng, count=60, bits=bits)

    # Exact baseline by full expansion (what the sketch avoids).
    t0 = time.perf_counter()
    exact = ExactF0()
    expanded_points = 0
    for rule in rules:
        for piece in rule.affine_pieces():
            for x in piece:
                exact.process(x)
                expanded_points += 1
    t_exact = time.perf_counter() - t0

    params = SketchParams(eps=0.4, delta=0.2,
                          thresh_constant=32.0, repetitions_constant=6.0)
    t0 = time.perf_counter()
    sketch = StructuredF0Minimum(2 * bits, params, rng)
    sketch.process_stream(rules)
    t_sketch = time.perf_counter() - t0

    truth = exact.distinct()
    est = sketch.estimate()
    print(f"rules processed           : {len(rules)}")
    print(f"points a naive scan visits: {expanded_points}")
    print(f"exact distinct coverage   : {truth}")
    print(f"sketch estimate           : {est:.0f}  "
          f"(relative error {abs(est - truth) / truth:.3f})")
    print(f"sketch space              : {sketch.space_bits()} bits")
    print(f"naive expansion time      : {t_exact:.3f}s")
    print(f"range-efficient time      : {t_sketch:.3f}s "
          "(independent of rectangle area)")


if __name__ == "__main__":
    main()
