#!/usr/bin/env python3
"""Affine-space streams: coverage of linear-code cosets (Theorem 7).

A distributed fuzzer reports, per probe, the *solution set of the linear
constraints it pinned* -- an affine subspace ``{x : A x = b}`` of the
16-bit configuration space (e.g. parity relations among feature flags).
"How many distinct configurations were covered?" is F0 over a stream of
affine spaces.  Expanding a subspace costs up to 2^dim points; the
structured estimator's per-item cost is polynomial in n via AffineFindMin
(Proposition 4) -- Gaussian elimination, no oracle at all.

Run:  python examples/coset_coverage.py
"""

import random

from repro import AffineSet, SketchParams, StructuredF0Minimum
from repro.structured.affine_stream import affine_find_min
from repro.hashing.toeplitz import ToeplitzHashFamily


def random_affine_probe(rng, n):
    """A random coset: pin between n-10 and n-4 random parity constraints
    so each probe covers 2^4 .. 2^10 configurations."""
    constraints = rng.randint(n - 10, n - 4)
    rows = [rng.getrandbits(n) for _ in range(constraints)]
    rhs = [rng.getrandbits(1) for _ in range(constraints)]
    return AffineSet(rows, rhs, n)


def main() -> None:
    rng = random.Random(31)
    n = 16
    probes = [random_affine_probe(rng, n) for _ in range(40)]

    # Demonstrate the Proposition 4 subroutine on one probe.
    h = ToeplitzHashFamily(n, 3 * n).sample(rng)
    demo = probes[0]
    smallest = affine_find_min(demo, h, 5)
    print(f"probe 0 covers {demo.size()} configurations; "
          f"5 smallest hashed values: {[hex(v) for v in smallest]}")

    # Exact union (feasible here because probes are small).
    union = set()
    for p in probes:
        for piece in p.affine_pieces():
            union.update(piece)
    truth = len(union)

    params = SketchParams(eps=0.4, delta=0.2,
                          thresh_constant=32.0, repetitions_constant=6.0)
    sketch = StructuredF0Minimum(n, params, rng)
    sketch.process_stream(probes)
    est = sketch.estimate()

    total_points = sum(p.size() for p in probes)
    print(f"\nprobes                  : {len(probes)}")
    print(f"points if expanded      : {total_points}")
    print(f"exact distinct coverage : {truth}")
    print(f"sketch estimate         : {est:.0f}  "
          f"(relative error {abs(est - truth) / truth:.3f})")
    print(f"sketch space            : {sketch.space_bits()} bits")


if __name__ == "__main__":
    main()
