#!/usr/bin/env python3
"""A guided tour of the paper, theorem by theorem, on tiny instances.

Runs every major claim of "Model Counting meets F0 Estimation" at toy
scale with printed narration — the quickest way to see which module
implements which result.  Each section cites the paper's statement it
exercises.

Run:  python examples/paper_walkthrough.py
"""

import random

from repro import (
    CnfFormula,
    MultiRange,
    SketchParams,
    StructuredF0Minimum,
    exact_model_count,
    random_dnf,
)
from repro.core.approxmc import approx_mc
from repro.core.est_count import approx_model_count_est
from repro.core.find_min import find_min_dnf
from repro.core.fm_count import flajolet_martin_count
from repro.core.min_count import approx_model_count_min
from repro.core.recipe import (
    bucketing_sketch_from_formula,
    bucketing_sketch_from_stream,
)
from repro.core.sampling import sample_solutions
from repro.distributed.partition import partition_round_robin
from repro.distributed.protocols import distributed_minimum
from repro.hashing.toeplitz import ToeplitzHashFamily
from repro.structured.cnf_ranges import multirange_to_cnf
from repro.structured.weighted import weighted_dnf_exact_via_ranges
from repro.formulas.weights import WeightFunction

PARAMS = SketchParams(eps=0.6, delta=0.2, thresh_constant=24.0,
                      repetitions_constant=5.0)
RNG = random.Random(2021)


def banner(text):
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def section_1_the_bridge():
    banner("Section 1/3.1 - the bridge: a formula IS a stream")
    formula = random_dnf(RNG, 8, 4, 3)
    solutions = sorted(formula.solution_set())
    stream = solutions * 2
    RNG.shuffle(stream)
    h = ToeplitzHashFamily(8, 8).sample(RNG)
    s_stream = bucketing_sketch_from_stream(stream, h, 12)
    s_formula = bucketing_sketch_from_formula(formula, h, 12)
    print(f"streaming sketch : level={s_stream[1]}, "
          f"|cell|={len(s_stream[0])}")
    print(f"counting sketch  : level={s_formula[1]}, "
          f"|cell|={len(s_formula[0])}")
    print(f"identical objects: {s_stream == s_formula}")


def section_3_counters():
    banner("Theorems 2-4 - the three transformed counters")
    formula = random_dnf(RNG, 12, 6, 5)
    truth = exact_model_count(formula)
    print(f"random DNF, exact count = {truth}")
    a = approx_mc(formula, PARAMS, RNG)
    b = approx_model_count_min(formula, PARAMS, RNG)
    c = approx_model_count_est(formula, PARAMS, RNG)
    f = flajolet_martin_count(formula, RNG, repetitions=9)
    print(f"Theorem 2 (Bucketing/ApproxMC): {a.estimate:.0f}")
    print(f"Theorem 3 (Minimum, new)      : {b.estimate:.0f}")
    print(f"Theorem 4 (Estimation, new)   : {c.estimate:.0f}")
    print(f"Sec 3.4 rough FM (factor 5)   : {f.estimate:.0f}")

    h = ToeplitzHashFamily(12, 36).sample(RNG)
    smallest = find_min_dnf(formula, h, 5)
    print(f"Proposition 2 FindMin: 5 smallest hashed solutions = "
          f"{[hex(v) for v in smallest]}")


def section_4_distributed():
    banner("Section 4 - distributed DNF counting")
    formula = random_dnf(RNG, 10, 12, 4)
    truth = exact_model_count(formula)
    sites = partition_round_robin(formula, 4)
    result = distributed_minimum(sites, PARAMS, RNG)
    print(f"4 sites, exact={truth}, coordinator estimate="
          f"{result.estimate:.0f}, bits={result.total_bits}")


def section_5_structured():
    banner("Section 5 - structured set streams")
    ranges = [MultiRange([(RNG.randint(0, 100), RNG.randint(150, 255)),
                          (RNG.randint(0, 100), RNG.randint(150, 255))], 8)
              for _ in range(6)]
    union = set()
    for r in ranges:
        for piece in r.affine_pieces():
            union.update(piece)
    sketch = StructuredF0Minimum(16, PARAMS, RNG)
    sketch.process_stream(ranges)
    print(f"Theorem 6: six 2-d ranges, exact union {len(union)}, "
          f"estimate {sketch.estimate():.0f}")
    print(f"Lemma 4  : first range compiles to "
          f"{ranges[0].term_count()} DNF terms")
    print(f"Obs 2    : ...but only "
          f"{multirange_to_cnf(ranges[0]).num_clauses} CNF clauses")

    formula = random_dnf(RNG, 4, 3, 2)
    weights = WeightFunction.random(RNG, 4, max_bits=3)
    w = weighted_dnf_exact_via_ranges(formula, weights)
    direct = weights.formula_weight_bruteforce(formula)
    print(f"weighted #DNF via ranges: W(phi) = {w} "
          f"(direct computation agrees: {w == direct})")


def section_6_outlook():
    banner("Section 6 - future work, implemented as extensions")
    formula = CnfFormula(8, [[1, 2], [3, 4], [-1, -3]])
    samples = sample_solutions(formula, RNG, 5)
    print(f"sampling (JVV direction): 5 near-uniform models of a CNF: "
          f"{[bin(s) for s in samples]}")
    print("(see also: sparse-XOR families in repro.hashing.xor and the "
          "Delphic\n APS-Estimator in repro.structured.delphic)")


if __name__ == "__main__":
    section_1_the_bridge()
    section_3_counters()
    section_4_distributed()
    section_5_structured()
    section_6_outlook()
